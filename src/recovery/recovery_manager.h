// RecoveryManager: write-ahead logging + restart for open nested
// transactions, extending the multi-level recovery line the paper's
// conclusion points at ([WHBM90, HW91]).
//
// Online, the manager listens to both strata of events:
//   * ObjectStore changes -> physical redo records;
//   * transactional events -> txn begin/commit/abort and per-action undo
//     information (method results for registered semantic inverses,
//     before-images for leaf writes).
//
// At restart, Recover():
//   1. REDO: replays physical records of the stable log in LSN order into a
//      fresh store, reproducing the exact crash-time state including the
//      original object ids (the data "disk" is not consulted: the log is
//      the authoritative copy — a log-structured restart). When the log
//      contains a complete checkpoint region (kCkptBegin..kCkptEnd), replay
//      starts at that region instead of the head: earlier physical records
//      are covered by the fuzzy dump, and records *inside* the region are
//      applied idempotently (AlreadyExists/NotFound are benign there,
//      because online records of concurrent transactions interleave with
//      the dump);
//   2. UNDO: identifies loser transactions (begun, neither committed nor
//      abort-completed) and walks their transactional records in reverse LSN
//      order, skipping records covered by a committed ancestor that carries
//      a total semantic inverse — the same rule the online abort path uses —
//      running method inverses as new transactions and reverting uncovered
//      leaf writes physically. (Leaf before-images are sound here for the
//      same reason they are sound online: a leaf whose enclosing method
//      never committed was invisible to other transactions — Case 2 blocks
//      them until the method commits.)
#ifndef SEMCC_RECOVERY_RECOVERY_MANAGER_H_
#define SEMCC_RECOVERY_RECOVERY_MANAGER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "object/object_store.h"
#include "recovery/wal.h"
#include "txn/txn_context.h"
#include "txn/txn_manager.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

/// \brief Commit-durability policy of the RecoveryManager, plus the log
/// device configuration the Database uses to build the WAL.
struct RecoveryOptions {
  /// false: every commit forces the log individually (simplest, one device
  /// write per transaction). true: commits enqueue and a group flusher
  /// makes them stable together — one device write covers every commit that
  /// arrived in the window. With a non-zero WAL flush latency this is the
  /// classic group-commit throughput win.
  bool group_commit = false;
  /// Timed batching window slept before each group flush when
  /// adaptive_group_window is off (the pre-PR-8 fixed-window behaviour,
  /// kept for comparison benchmarks). Ignored in adaptive mode, where the
  /// window is always zero: the in-flight device sync is the batching
  /// window — commits that arrive while it runs ride the next pipelined
  /// batch — and any timed wait on top only idles the device (measured: a
  /// timed window parks every closed-loop committer before syncing, so the
  /// pipeline never forms and group commit loses to force-per-commit).
  std::chrono::microseconds group_window{1000};
  /// Flush on demand with no timed window, batching purely by absorption
  /// into the pipelined flush (see group_window).
  bool adaptive_group_window = true;
  /// Number of group-flusher threads. Two pipelines the flush path: one
  /// thread claims and encodes the next batch while the other's fsync is
  /// still in flight (see WriteAheadLog::FlushTo). One degenerates to the
  /// serial flusher.
  int flusher_threads = 2;
  /// > 0: after roughly this many appended log records, a commit triggers
  /// an online fuzzy checkpoint through the trigger installed with
  /// SetCheckpointTrigger (the Database wires itself in). 0 = no automatic
  /// checkpoints (Database::Checkpoint can still be called manually).
  uint64_t checkpoint_every_records = 0;
  /// Truncate the WAL prefix covered by a completed checkpoint (memory and
  /// device). false keeps the full log — the crash-offset sweep uses this
  /// to enumerate every historical crash point across a checkpoint.
  bool checkpoint_truncate = true;
  /// Empty: in-memory log device (tests, perf baselines). Non-empty:
  /// durable file-backed log in this directory — append-only segment files
  /// written through POSIX write/fsync (see file_log_device.h).
  std::string log_dir;
  /// Segment rotation threshold of the file-backed device.
  uint64_t log_segment_bytes = 4u << 20;
  /// In-memory device only: simulated stable-storage latency per sync.
  uint32_t wal_flush_micros = 0;
  /// Flush attempts (first try + retries) before the WAL degrades to the
  /// failed read-only state (see WalOptions).
  int max_flush_attempts = 4;
  /// Backoff before the first flush retry; doubles per further retry.
  std::chrono::microseconds flush_retry_backoff{200};
};

class RecoveryManager : public StoreListener, public ActionLogger {
 public:
  explicit RecoveryManager(WriteAheadLog* wal,
                           RecoveryOptions options = RecoveryOptions());
  ~RecoveryManager() override;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(RecoveryManager);

  // --- StoreListener (physical redo stratum) -----------------------------
  void OnCreateAtomic(Oid oid, TypeId type, const Value& initial) override;
  void OnCreateTuple(
      Oid oid, TypeId type,
      const std::vector<std::pair<std::string, Oid>>& components) override;
  void OnCreateSet(Oid oid, TypeId type) override;
  void OnDestroy(Oid oid) override;
  void OnPut(Oid oid, const Value& after) override;
  void OnSetInsert(Oid set, const Value& key, Oid member) override;
  void OnSetRemove(Oid set, const Value& key, Oid member) override;

  // --- ActionLogger (transactional undo stratum) -------------------------
  void OnTxnBegin(TxnId txn) override;
  /// Forces the log (individually or via group commit). A durability
  /// failure cannot stop the in-memory commit — the interface is void — so
  /// it is recorded sticky in health() and logged loudly instead.
  void OnTxnCommit(TxnId txn) override;
  void OnTxnAbort(TxnId txn) override;
  void OnMethodCommitted(const SubTxn& node, const Value& result,
                         bool has_total_inverse) override;
  void OnLeafPut(const SubTxn& node, const Value& before) override;
  void OnLeafSetInsert(const SubTxn& node) override;
  void OnLeafSetRemove(const SubTxn& node, Oid removed_member) override;

  /// Log a named-root binding (durable directory of entry-point objects).
  void OnNamedRoot(const std::string& name, Oid oid);

  /// Take an online fuzzy checkpoint: append a kCkptBegin marker, dump the
  /// live object graph as restore records (store->DumpForCheckpoint, which
  /// excludes concurrent writers per object, not globally — transactions
  /// keep committing), re-log the named roots, append kCkptEnd, force it
  /// stable, and (if options.checkpoint_truncate) drop the log prefix the
  /// checkpoint made redundant. The truncation point is
  /// min(checkpoint-begin LSN, begin LSN of every transaction still active
  /// at checkpoint begin) so no loser's undo information is ever dropped.
  /// Serialized against itself; safe to call concurrently with commits.
  Status Checkpoint(ObjectStore* store,
                    const std::vector<std::pair<std::string, Oid>>& roots)
      SEMCC_EXCLUDES(gc_mu_);

  /// Install the callback MaybeTriggerCheckpoint fires when the log grows
  /// past checkpoint_every_records (the Database installs its own
  /// Checkpoint()). Call once, before transactions start.
  void SetCheckpointTrigger(std::function<Status()> trigger) {
    ckpt_trigger_ = std::move(trigger);
  }

  WriteAheadLog* wal() { return wal_; }

  /// OK, or the first durability failure observed on a commit/abort force
  /// (also surfaces the WAL's own degraded state). Sticky.
  Status health() const SEMCC_EXCLUDES(gc_mu_);

  /// Stop the group flusher, draining pending flush requests first (a
  /// commit waiting in MakeStable either becomes stable or is failed — it
  /// is never left sleeping). Idempotent; the destructor calls it.
  void Shutdown() SEMCC_EXCLUDES(gc_mu_);

  struct RecoveryStats {
    size_t records = 0;
    size_t redo_applied = 0;
    /// In-checkpoint-region records skipped as already covered by the fuzzy
    /// dump (benign AlreadyExists/NotFound), plus pre-checkpoint physical
    /// records not replayed at all.
    size_t redo_skipped = 0;
    /// True when REDO started from a complete kCkptBegin..kCkptEnd region
    /// instead of the head of the log.
    bool used_checkpoint = false;
    size_t winners = 0;
    size_t losers = 0;
    size_t inverses_run = 0;
    size_t leaf_undos = 0;
    /// Ids of the loser transactions (in-place restart logs a kTxnAbort
    /// marker for each once their compensation completed).
    std::vector<TxnId> loser_ids;
    std::string ToString() const;
  };

  /// Rebuild state from `log` into the (freshly constructed, schema- and
  /// method-installed, object-empty) target components. `named_root_sink`
  /// receives replayed named-root bindings. `between_passes`, if set, runs
  /// after the physical REDO pass and before loser compensation — in-place
  /// restart uses it to reattach the store listener, so REDO does not
  /// re-log records that are already in the log but the compensation
  /// transactions do log theirs.
  static Result<RecoveryStats> Recover(
      const std::vector<LogRecord>& log, ObjectStore* store,
      MethodRegistry* methods, TxnManager* txns,
      const std::function<void(const std::string&, Oid)>& named_root_sink,
      const std::function<void()>& between_passes = {});

 private:
  LogRecord ActionBase(const SubTxn& node, LogType type);
  /// Make `lsn` stable per the commit policy (force or group). Returns the
  /// durability outcome: a failed WAL, a failed group flush, or a flusher
  /// that stopped before the LSN became stable all surface here instead of
  /// hanging the committer.
  Status MakeStable(Lsn lsn) SEMCC_EXCLUDES(gc_mu_);
  void GroupFlusherLoop() SEMCC_EXCLUDES(gc_mu_);
  /// Record a durability failure in health() (first one wins) and log it.
  void RecordFailure(const Status& st) SEMCC_EXCLUDES(gc_mu_);
  /// The next group flush's batching window: always zero in adaptive mode
  /// (batching happens by absorption into the in-flight sync), the
  /// configured group_window otherwise.
  std::chrono::microseconds AdaptiveWindow() const;
  /// Fire the checkpoint trigger if the log has grown past the configured
  /// record budget. Runs the checkpoint synchronously on the calling
  /// (committing) thread; concurrent commits proceed — only one trigger
  /// runs at a time.
  void MaybeTriggerCheckpoint();

  WriteAheadLog* const wal_;
  const RecoveryOptions options_;

  // Group-commit machinery (only used when options_.group_commit).
  mutable Mutex gc_mu_;
  CondVar gc_cv_;
  bool gc_stop_ SEMCC_GUARDED_BY(gc_mu_) = false;
  /// Highest LSN whose durability has been requested. A watermark, not a
  /// boolean: requests that arrive while a flush is in flight stay visible
  /// (watermark > stable_lsn) instead of being lost with the batch flag.
  Lsn gc_requested_ SEMCC_GUARDED_BY(gc_mu_) = 0;
  /// First group-flush failure; sticky, returned to every waiter.
  Status gc_status_ SEMCC_GUARDED_BY(gc_mu_);
  /// Pool threads still running; 0 => gc_exited_.
  int gc_live_ SEMCC_GUARDED_BY(gc_mu_) = 0;
  bool gc_exited_ SEMCC_GUARDED_BY(gc_mu_) = false;
  /// First durability failure observed on any commit/abort path.
  Status health_ SEMCC_GUARDED_BY(gc_mu_);
  std::vector<std::thread> gc_pool_;

  // Checkpoint machinery.
  /// Begin LSN of every transaction with a logged begin and no stable
  /// commit/abort yet. Entries are erased only *after* the commit/abort
  /// record is stable: a checkpoint must never truncate the undo records of
  /// a transaction that could still be a loser.
  std::map<TxnId, Lsn> active_txn_begin_ SEMCC_GUARDED_BY(ckpt_mu_);
  /// Guards the active-transaction map; held across the kCkptBegin append
  /// so the truncation point and the map snapshot are atomic w.r.t.
  /// concurrent OnTxnBegin (which holds it across append+insert).
  mutable Mutex ckpt_mu_;
  /// Serializes whole checkpoint runs.
  Mutex ckpt_run_mu_;
  std::function<Status()> ckpt_trigger_;
  /// next_lsn_hint threshold at which the next automatic checkpoint fires.
  std::atomic<uint64_t> ckpt_next_at_{0};
  std::atomic<bool> ckpt_in_trigger_{false};
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_RECOVERY_MANAGER_H_
