// RecoveryManager: write-ahead logging + restart for open nested
// transactions, extending the multi-level recovery line the paper's
// conclusion points at ([WHBM90, HW91]).
//
// Online, the manager listens to both strata of events:
//   * ObjectStore changes -> physical redo records;
//   * transactional events -> txn begin/commit/abort and per-action undo
//     information (method results for registered semantic inverses,
//     before-images for leaf writes).
//
// At restart, Recover():
//   1. REDO: replays all physical records of the stable log in LSN order
//      into a fresh store, reproducing the exact crash-time state including
//      the original object ids (the data "disk" is not consulted: the log is
//      the authoritative copy — a log-structured restart);
//   2. UNDO: identifies loser transactions (begun, neither committed nor
//      abort-completed) and walks their transactional records in reverse LSN
//      order, skipping records covered by a committed ancestor that carries
//      a total semantic inverse — the same rule the online abort path uses —
//      running method inverses as new transactions and reverting uncovered
//      leaf writes physically. (Leaf before-images are sound here for the
//      same reason they are sound online: a leaf whose enclosing method
//      never committed was invisible to other transactions — Case 2 blocks
//      them until the method commits.)
#ifndef SEMCC_RECOVERY_RECOVERY_MANAGER_H_
#define SEMCC_RECOVERY_RECOVERY_MANAGER_H_

#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "object/object_store.h"
#include "recovery/wal.h"
#include "txn/txn_context.h"
#include "txn/txn_manager.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

/// \brief Commit-durability policy of the RecoveryManager, plus the log
/// device configuration the Database uses to build the WAL.
struct RecoveryOptions {
  /// false: every commit forces the log individually (simplest, one device
  /// write per transaction). true: commits enqueue and a group flusher
  /// makes them stable together — one device write covers every commit that
  /// arrived in the window. With a non-zero WAL flush latency this is the
  /// classic group-commit throughput win.
  bool group_commit = false;
  /// Batching window of the group flusher.
  std::chrono::microseconds group_window{200};
  /// Empty: in-memory log device (tests, perf baselines). Non-empty:
  /// durable file-backed log in this directory — append-only segment files
  /// written through POSIX write/fsync (see file_log_device.h).
  std::string log_dir;
  /// Segment rotation threshold of the file-backed device.
  uint64_t log_segment_bytes = 4u << 20;
  /// In-memory device only: simulated stable-storage latency per sync.
  uint32_t wal_flush_micros = 0;
  /// Flush attempts (first try + retries) before the WAL degrades to the
  /// failed read-only state (see WalOptions).
  int max_flush_attempts = 4;
  /// Backoff before the first flush retry; doubles per further retry.
  std::chrono::microseconds flush_retry_backoff{200};
};

class RecoveryManager : public StoreListener, public ActionLogger {
 public:
  explicit RecoveryManager(WriteAheadLog* wal,
                           RecoveryOptions options = RecoveryOptions());
  ~RecoveryManager() override;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(RecoveryManager);

  // --- StoreListener (physical redo stratum) -----------------------------
  void OnCreateAtomic(Oid oid, TypeId type, const Value& initial) override;
  void OnCreateTuple(
      Oid oid, TypeId type,
      const std::vector<std::pair<std::string, Oid>>& components) override;
  void OnCreateSet(Oid oid, TypeId type) override;
  void OnDestroy(Oid oid) override;
  void OnPut(Oid oid, const Value& after) override;
  void OnSetInsert(Oid set, const Value& key, Oid member) override;
  void OnSetRemove(Oid set, const Value& key, Oid member) override;

  // --- ActionLogger (transactional undo stratum) -------------------------
  void OnTxnBegin(TxnId txn) override;
  /// Forces the log (individually or via group commit). A durability
  /// failure cannot stop the in-memory commit — the interface is void — so
  /// it is recorded sticky in health() and logged loudly instead.
  void OnTxnCommit(TxnId txn) override;
  void OnTxnAbort(TxnId txn) override;
  void OnMethodCommitted(const SubTxn& node, const Value& result,
                         bool has_total_inverse) override;
  void OnLeafPut(const SubTxn& node, const Value& before) override;
  void OnLeafSetInsert(const SubTxn& node) override;
  void OnLeafSetRemove(const SubTxn& node, Oid removed_member) override;

  /// Log a named-root binding (durable directory of entry-point objects).
  void OnNamedRoot(const std::string& name, Oid oid);

  WriteAheadLog* wal() { return wal_; }

  /// OK, or the first durability failure observed on a commit/abort force
  /// (also surfaces the WAL's own degraded state). Sticky.
  Status health() const SEMCC_EXCLUDES(gc_mu_);

  /// Stop the group flusher, draining pending flush requests first (a
  /// commit waiting in MakeStable either becomes stable or is failed — it
  /// is never left sleeping). Idempotent; the destructor calls it.
  void Shutdown() SEMCC_EXCLUDES(gc_mu_);

  struct RecoveryStats {
    size_t records = 0;
    size_t redo_applied = 0;
    size_t winners = 0;
    size_t losers = 0;
    size_t inverses_run = 0;
    size_t leaf_undos = 0;
    /// Ids of the loser transactions (in-place restart logs a kTxnAbort
    /// marker for each once their compensation completed).
    std::vector<TxnId> loser_ids;
    std::string ToString() const;
  };

  /// Rebuild state from `log` into the (freshly constructed, schema- and
  /// method-installed, object-empty) target components. `named_root_sink`
  /// receives replayed named-root bindings. `between_passes`, if set, runs
  /// after the physical REDO pass and before loser compensation — in-place
  /// restart uses it to reattach the store listener, so REDO does not
  /// re-log records that are already in the log but the compensation
  /// transactions do log theirs.
  static Result<RecoveryStats> Recover(
      const std::vector<LogRecord>& log, ObjectStore* store,
      MethodRegistry* methods, TxnManager* txns,
      const std::function<void(const std::string&, Oid)>& named_root_sink,
      const std::function<void()>& between_passes = {});

 private:
  LogRecord ActionBase(const SubTxn& node, LogType type);
  /// Make `lsn` stable per the commit policy (force or group). Returns the
  /// durability outcome: a failed WAL, a failed group flush, or a flusher
  /// that stopped before the LSN became stable all surface here instead of
  /// hanging the committer.
  Status MakeStable(Lsn lsn) SEMCC_EXCLUDES(gc_mu_);
  void GroupFlusherLoop() SEMCC_EXCLUDES(gc_mu_);
  /// Record a durability failure in health() (first one wins) and log it.
  void RecordFailure(const Status& st) SEMCC_EXCLUDES(gc_mu_);

  WriteAheadLog* const wal_;
  const RecoveryOptions options_;

  // Group-commit machinery (only used when options_.group_commit).
  mutable Mutex gc_mu_;
  CondVar gc_cv_;
  bool gc_stop_ SEMCC_GUARDED_BY(gc_mu_) = false;
  /// Highest LSN whose durability has been requested. A watermark, not a
  /// boolean: requests that arrive while a flush is in flight stay visible
  /// (watermark > stable_lsn) instead of being lost with the batch flag.
  Lsn gc_requested_ SEMCC_GUARDED_BY(gc_mu_) = 0;
  /// First group-flush failure; sticky, returned to every waiter.
  Status gc_status_ SEMCC_GUARDED_BY(gc_mu_);
  bool gc_exited_ SEMCC_GUARDED_BY(gc_mu_) = false;
  /// First durability failure observed on any commit/abort path.
  Status health_ SEMCC_GUARDED_BY(gc_mu_);
  std::thread gc_flusher_;
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_RECOVERY_MANAGER_H_
