// Write-ahead log with an explicit stable/volatile boundary for crash
// simulation: Append adds to the volatile tail, Flush moves the boundary,
// and LoseVolatileTail models a crash (everything after the last Flush is
// gone). Records are stored in their encoded form — exactly what would sit
// in the log file — and decoded on read, so the binary codec is on the hot
// path and tested end to end.
#ifndef SEMCC_RECOVERY_WAL_H_
#define SEMCC_RECOVERY_WAL_H_

#include <atomic>
#include <string>
#include <vector>

#include "recovery/log_record.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

class WriteAheadLog {
 public:
  /// \param flush_micros simulated stable-storage latency per Flush (models
  /// an fsync; 0 = free). With a non-zero cost, group commit pays off — see
  /// RecoveryManager::Options::group_commit.
  explicit WriteAheadLog(uint32_t flush_micros = 0)
      : flush_micros_(flush_micros) {}
  SEMCC_DISALLOW_COPY_AND_ASSIGN(WriteAheadLog);

  /// Append a record (assigns the LSN). Thread-safe.
  Lsn Append(LogRecord record);

  /// Make every appended record stable (force).
  void Flush();

  /// Crash simulation: drop all records after the last Flush.
  void LoseVolatileTail();

  /// Decode and return all stable records in LSN order.
  std::vector<LogRecord> StableRecords() const;

  /// Decode and return everything, including the volatile tail.
  std::vector<LogRecord> AllRecords() const;

  size_t stable_count() const;
  size_t total_count() const;
  uint64_t stable_bytes() const;
  uint64_t flush_count() const;
  /// Last LSN that is stable (0 if none).
  Lsn stable_lsn() const;

 private:
  const uint32_t flush_micros_;
  /// The (single) simulated log device. Acquired before mu_ in Flush; never
  /// held across an mu_ critical section in the other direction.
  Mutex device_mu_ SEMCC_ACQUIRED_BEFORE(mu_);
  mutable Mutex mu_;
  /// One entry per record, encoded.
  std::vector<std::string> encoded_ SEMCC_GUARDED_BY(mu_);
  /// Parallel to encoded_.
  std::vector<Lsn> lsns_ SEMCC_GUARDED_BY(mu_);
  /// Records [0, stable_) survive a crash.
  size_t stable_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t stable_bytes_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t flushes_ SEMCC_GUARDED_BY(mu_) = 0;
  std::atomic<Lsn> next_lsn_{1};
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_WAL_H_
