// Write-ahead log over a pluggable byte device (log_device.h).
//
// Append adds a record to the volatile tail (process memory); FlushTo
// frames pending records — length-prefix + CRC32C per record — writes them
// to the device and syncs, moving the stable boundary. Records are stored
// in their encoded form — exactly what sits on the device — and decoded on
// read, so the binary codec is on the hot path and tested end to end.
//
// Flush pipeline (the PR 8 redesign): FlushTo is a leader/follower group
// commit with a depth-two device pipeline.
//   * A caller whose target LSN is already claimed by an in-flight batch
//     parks on the stable watermark (per-LSN wait, no device contact).
//   * Otherwise it becomes a leader: it claims every unclaimed record under
//     mu_, encodes the frames, and submits to the device *in claim order*
//     (a turn counter under device_mu_ keeps frames in LSN order on disk).
//     Up to two batches are in flight at once, so the frame encoding of
//     batch N+1 overlaps the fsync of batch N, and a committer arriving
//     during a sync claims everything that piled up — natural batching at
//     fsync granularity with no fixed window.
//   * The retry backoff sleeps with device_mu_ *released* (condvar wait),
//     so stats readers and concurrent flushers with already-stable targets
//     never stall behind a retry loop.
//
// Failure contract (the part the in-memory ancestor never had):
//   * FlushTo retries transient device errors with bounded exponential
//     backoff (WalOptions::max_flush_attempts); a torn batch append is
//     rolled back with Truncate before the retry so frames never
//     double-write.
//   * If retries are exhausted the WAL degrades to a failed, read-only
//     state: the first error sticks (health()), later batches in the
//     pipeline fail without touching the device (frames must stay in LSN
//     order), further Flushes return the error, and Append drops the record
//     and returns kInvalidLsn — commit paths observe the failure through
//     RecoveryManager::MakeStable rather than a crash.
//   * At restart, RecoverAtStartup scans the device image, truncates a
//     torn/corrupt *tail* at the first bad checksum (repairing the device
//     in place), and refuses mid-log corruption with Status::Corruption
//     instead of replaying garbage.
//
// Checkpoint truncation: TruncateCheckpointed drops the stable record
// prefix covered by a completed fuzzy checkpoint from the in-memory
// vectors (bounding their growth) and asks the device to free the
// corresponding byte prefix (whole segments on the file device). The
// stable LSN watermark is monotonic across truncation.
//
// LoseVolatileTail models the old simulated crash (drop everything after
// the last Flush); device-level crashes — torn writes, power cuts — are
// injected underneath via FaultInjector.
#ifndef SEMCC_RECOVERY_WAL_H_
#define SEMCC_RECOVERY_WAL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "recovery/log_device.h"
#include "recovery/log_record.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/metrics.h"

namespace semcc {

/// \brief Point-in-time snapshot of WAL statistics (plain data; returned by
/// value from WriteAheadLog::stats()).
struct WalStats {
  uint64_t appends = 0;        ///< records accepted by Append
  uint64_t flushes = 0;        ///< successful non-empty forces
  uint64_t flush_retries = 0;  ///< device errors retried inside FlushTo
  bool degraded = false;       ///< sticky failed/read-only state
  uint64_t stable_records = 0; ///< records ever made stable (incl. truncated)
  uint64_t stable_bytes = 0;   ///< framed bytes currently on the device
  uint64_t retained_records = 0;   ///< records held in memory
  uint64_t truncated_records = 0;  ///< records dropped by checkpoints
  /// Device time (append + sync, including retries) per successful flush.
  metrics::HistogramSummary flush_micros;
  /// Records per flushed batch (group-commit effectiveness).
  metrics::HistogramSummary flush_batch_records;

  std::string ToJson() const;
};

struct WalOptions {
  /// Flush attempts per call (first try + retries) before the WAL degrades
  /// to the failed state.
  int max_flush_attempts = 4;
  /// Backoff before the first retry; doubles per further retry.
  std::chrono::microseconds flush_retry_backoff{200};
};

class WriteAheadLog {
 public:
  /// In-memory device (the unit-test default). \param flush_micros
  /// simulated stable-storage latency per Flush (models an fsync; 0 =
  /// free). With a non-zero cost, group commit pays off — see
  /// RecoveryOptions::group_commit.
  explicit WriteAheadLog(uint32_t flush_micros = 0);
  /// Explicit device (file-backed or fault-injected).
  explicit WriteAheadLog(std::unique_ptr<LogDevice> device,
                         WalOptions options = WalOptions());
  SEMCC_DISALLOW_COPY_AND_ASSIGN(WriteAheadLog);

  /// Scan the device's existing durable image: CRC-check every frame,
  /// truncate a torn tail (on the device too, so new appends are
  /// consistent), refuse mid-log corruption, and continue LSN assignment
  /// after the highest recovered LSN. Returns the recovered records for
  /// replay. Call once, before any Append, on a freshly constructed WAL.
  Result<std::vector<LogRecord>> RecoverAtStartup() SEMCC_EXCLUDES(device_mu_);

  /// Append a record (assigns the LSN). Thread-safe. In the failed state
  /// the record is dropped and kInvalidLsn returned.
  Lsn Append(LogRecord record);

  /// Make every record appended so far stable (force). Equivalent to
  /// FlushTo(last appended LSN).
  Status Flush() SEMCC_EXCLUDES(device_mu_);

  /// Make every record up to `target` stable. If an in-flight batch
  /// already covers the target, parks on the stable watermark; otherwise
  /// leads a new batch (see the pipeline contract above). Retries
  /// transient device errors; on exhaustion degrades the WAL and returns
  /// the error (which also becomes health()).
  Status FlushTo(Lsn target) SEMCC_EXCLUDES(device_mu_);

  /// Force-per-commit flush: like FlushTo, but ALWAYS issues one device
  /// sync from this call, even when `target` is already durable — the
  /// naive (write; fsync) commit baseline that group commit amortizes.
  /// Used by the force-per-commit durability policy so that policy means
  /// what its name says; everything else should use FlushTo.
  Status FlushForce(Lsn target) SEMCC_EXCLUDES(device_mu_);

  /// Drop stable records with lsn < `up_to` from memory and release the
  /// corresponding device prefix (LogDevice::DropPrefix — the file device
  /// frees whole closed segments only; the retained device image is always
  /// a superset of the retained records). Waits for in-flight batches to
  /// publish first. Returns the number of records dropped from memory.
  /// Callers must guarantee `up_to` is covered by a durable checkpoint.
  Result<size_t> TruncateCheckpointed(Lsn up_to) SEMCC_EXCLUDES(device_mu_);

  /// Crash simulation: drop all records after the last flush. Call only at
  /// quiesce (no in-flight batches).
  void LoseVolatileTail();

  /// Decode and return all *retained* stable records in LSN order (records
  /// truncated by a checkpoint are gone — the checkpoint covers them).
  /// Decode failures propagate as Status (corrupt-log tests assert against
  /// this contract).
  Result<std::vector<LogRecord>> StableRecords() const;

  /// Decode and return everything retained, including the volatile tail.
  Result<std::vector<LogRecord>> AllRecords() const;

  /// OK, or the sticky first device failure that degraded the WAL.
  Status health() const;

  /// Aggregate statistics snapshot (consistent under mu_ for the counters;
  /// histograms are monotonic lower bounds, exact at quiesce).
  WalStats stats() const;

  /// Records ever made stable, including checkpoint-truncated ones.
  size_t stable_count() const;
  /// Records ever appended (stable + volatile tail + truncated).
  size_t total_count() const;
  /// Records currently held in memory (bounded by checkpoint truncation).
  size_t retained_count() const;
  /// Records dropped from memory by TruncateCheckpointed.
  size_t truncated_count() const;
  /// Framed bytes currently stable on the device.
  uint64_t stable_bytes() const;
  uint64_t flush_count() const;
  /// Last LSN that is stable (0 if none). Monotonic across truncation.
  Lsn stable_lsn() const;
  /// Last LSN claimed by an in-flight or published batch (>= stable_lsn).
  Lsn claimed_lsn() const;
  /// Batches currently between claim and publish (0, 1, or 2).
  size_t inflight_batches() const;
  /// The next LSN Append would assign (cheap; for checkpoint triggers).
  Lsn next_lsn_hint() const { return next_lsn_.load(std::memory_order_relaxed); }

  /// Live p50 of the flush device time and mean records per batch — the
  /// adaptive group-window inputs (histogram snapshots; cheap relative to a
  /// device sync).
  uint64_t flush_p50_micros() const { return flush_micros_.Snapshot().p50; }
  double flush_batch_mean() const {
    return flush_batch_records_.Snapshot().mean();
  }

  /// The underlying device (stats, fault-plan reconfiguration in tests).
  LogDevice* device() { return device_.get(); }

  /// Truncate a retained record by one byte, bypassing the device
  /// (exercises the StableRecords/AllRecords decode-failure contract; the
  /// codec rejects truncated records, see LogRecordCodec.TruncationRejected).
  /// `index` is relative to the retained records.
  void CorruptRecordForTesting(size_t index);

 private:
  /// Shared body of FlushTo / FlushForce (see the pipeline contract above).
  Status FlushInternal(Lsn target, bool force_sync) SEMCC_EXCLUDES(device_mu_);

  const WalOptions options_;
  const std::unique_ptr<LogDevice> device_;
  /// Guards the device submission turn. Never held while sleeping: the
  /// retry backoff waits on device_cv_, which releases it. Acquired before
  /// mu_ only in RecoverAtStartup; the flush path holds the two strictly in
  /// sequence, never nested.
  mutable Mutex device_mu_ SEMCC_ACQUIRED_BEFORE(mu_);
  /// Signals turn advancement; doubles as the interruptible backoff timer.
  CondVar device_cv_;
  /// Batch sequence currently allowed to touch the device.
  uint64_t device_turn_ SEMCC_GUARDED_BY(device_mu_) = 0;
  /// Set when a batch exhausted its retries: later turns must not append
  /// (frames must stay in LSN order with no holes).
  bool device_failed_ SEMCC_GUARDED_BY(device_mu_) = false;

  mutable Mutex mu_;
  /// Publishes the stable watermark and batch-slot availability; waiters
  /// are per-LSN (each re-checks its own target against stable_lsn_).
  CondVar stable_cv_;
  /// One entry per retained record, encoded (payload bytes, unframed).
  /// Absolute record i lives at index i - base_records_.
  std::vector<std::string> encoded_ SEMCC_GUARDED_BY(mu_);
  /// Parallel to encoded_.
  std::vector<Lsn> lsns_ SEMCC_GUARDED_BY(mu_);
  /// Records dropped from the front by TruncateCheckpointed.
  size_t base_records_ SEMCC_GUARDED_BY(mu_) = 0;
  /// Retained records [0, stable_) survive a crash.
  size_t stable_ SEMCC_GUARDED_BY(mu_) = 0;
  /// Retained records [0, claimed_) belong to published or in-flight
  /// batches. stable_ <= claimed_ <= encoded_.size().
  size_t claimed_ SEMCC_GUARDED_BY(mu_) = 0;
  Lsn stable_lsn_ SEMCC_GUARDED_BY(mu_) = 0;
  Lsn claimed_lsn_ SEMCC_GUARDED_BY(mu_) = 0;
  /// Claimed-but-unpublished batches (bounded by kMaxInflightBatches).
  size_t inflight_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t next_batch_seq_ SEMCC_GUARDED_BY(mu_) = 0;
  /// A checkpoint truncation is rewriting the vectors; claims must wait.
  bool truncating_ SEMCC_GUARDED_BY(mu_) = false;
  uint64_t stable_bytes_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t flushes_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t appends_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t flush_retries_ SEMCC_GUARDED_BY(mu_) = 0;
  /// First device failure; sticky (the degraded/read-only state).
  Status failed_ SEMCC_GUARDED_BY(mu_);
  std::atomic<Lsn> next_lsn_{1};
  metrics::AtomicHistogram flush_micros_;
  metrics::AtomicHistogram flush_batch_records_;
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_WAL_H_
