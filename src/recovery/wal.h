// Write-ahead log over a pluggable byte device (log_device.h).
//
// Append adds a record to the volatile tail (process memory); Flush frames
// the tail — length-prefix + CRC32C per record — writes it to the device
// and syncs, moving the stable boundary. Records are stored in their
// encoded form — exactly what sits on the device — and decoded on read, so
// the binary codec is on the hot path and tested end to end.
//
// Failure contract (the part the in-memory ancestor never had):
//   * Flush retries transient device errors with bounded exponential
//     backoff (WalOptions::max_flush_attempts); a torn batch append is
//     rolled back with Truncate before the retry so frames never
//     double-write.
//   * If retries are exhausted the WAL degrades to a failed, read-only
//     state: the first error sticks (health()), further Flushes return it
//     without touching the device, and Append drops the record and returns
//     kInvalidLsn — commit paths observe the failure through
//     RecoveryManager::MakeStable rather than a crash.
//   * At restart, RecoverAtStartup scans the device image, truncates a
//     torn/corrupt *tail* at the first bad checksum (repairing the device
//     in place), and refuses mid-log corruption with Status::Corruption
//     instead of replaying garbage.
//
// LoseVolatileTail models the old simulated crash (drop everything after
// the last Flush); device-level crashes — torn writes, power cuts — are
// injected underneath via FaultInjector.
#ifndef SEMCC_RECOVERY_WAL_H_
#define SEMCC_RECOVERY_WAL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "recovery/log_device.h"
#include "recovery/log_record.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/metrics.h"

namespace semcc {

/// \brief Point-in-time snapshot of WAL statistics (plain data; returned by
/// value from WriteAheadLog::stats()).
struct WalStats {
  uint64_t appends = 0;        ///< records accepted by Append
  uint64_t flushes = 0;        ///< successful non-empty forces
  uint64_t flush_retries = 0;  ///< device errors retried inside Flush
  bool degraded = false;       ///< sticky failed/read-only state
  uint64_t stable_records = 0;
  uint64_t stable_bytes = 0;
  /// Device time (append + sync, including retries) per successful flush.
  metrics::HistogramSummary flush_micros;
  /// Records per flushed batch (group-commit effectiveness).
  metrics::HistogramSummary flush_batch_records;

  std::string ToJson() const;
};

struct WalOptions {
  /// Flush attempts per call (first try + retries) before the WAL degrades
  /// to the failed state.
  int max_flush_attempts = 4;
  /// Backoff before the first retry; doubles per further retry.
  std::chrono::microseconds flush_retry_backoff{200};
};

class WriteAheadLog {
 public:
  /// In-memory device (the unit-test default). \param flush_micros
  /// simulated stable-storage latency per Flush (models an fsync; 0 =
  /// free). With a non-zero cost, group commit pays off — see
  /// RecoveryOptions::group_commit.
  explicit WriteAheadLog(uint32_t flush_micros = 0);
  /// Explicit device (file-backed or fault-injected).
  explicit WriteAheadLog(std::unique_ptr<LogDevice> device,
                         WalOptions options = WalOptions());
  SEMCC_DISALLOW_COPY_AND_ASSIGN(WriteAheadLog);

  /// Scan the device's existing durable image: CRC-check every frame,
  /// truncate a torn tail (on the device too, so new appends are
  /// consistent), refuse mid-log corruption, and continue LSN assignment
  /// after the highest recovered LSN. Returns the recovered records for
  /// replay. Call once, before any Append, on a freshly constructed WAL.
  Result<std::vector<LogRecord>> RecoverAtStartup() SEMCC_EXCLUDES(device_mu_);

  /// Append a record (assigns the LSN). Thread-safe. In the failed state
  /// the record is dropped and kInvalidLsn returned.
  Lsn Append(LogRecord record);

  /// Make every appended record stable (force). Retries transient device
  /// errors; on exhaustion degrades the WAL and returns the error (which
  /// also becomes health()).
  Status Flush() SEMCC_EXCLUDES(device_mu_);

  /// Crash simulation: drop all records after the last Flush.
  void LoseVolatileTail();

  /// Decode and return all stable records in LSN order. Decode failures
  /// propagate as Status (corrupt-log tests assert against this contract).
  Result<std::vector<LogRecord>> StableRecords() const;

  /// Decode and return everything, including the volatile tail.
  Result<std::vector<LogRecord>> AllRecords() const;

  /// OK, or the sticky first device failure that degraded the WAL.
  Status health() const;

  /// Aggregate statistics snapshot (consistent under mu_ for the counters;
  /// histograms are monotonic lower bounds, exact at quiesce).
  WalStats stats() const;

  size_t stable_count() const;
  size_t total_count() const;
  /// Framed bytes made stable on the device.
  uint64_t stable_bytes() const;
  uint64_t flush_count() const;
  /// Last LSN that is stable (0 if none).
  Lsn stable_lsn() const;

  /// The underlying device (stats, fault-plan reconfiguration in tests).
  LogDevice* device() { return device_.get(); }

  /// Truncate a stored record by one byte, bypassing the device (exercises
  /// the StableRecords/AllRecords decode-failure contract; the codec
  /// rejects truncated records, see LogRecordCodec.TruncationRejected).
  void CorruptRecordForTesting(size_t index);

 private:
  const WalOptions options_;
  const std::unique_ptr<LogDevice> device_;
  /// Serializes device access. Acquired before mu_ in Flush; never held
  /// across an mu_ critical section in the other direction.
  Mutex device_mu_ SEMCC_ACQUIRED_BEFORE(mu_);
  mutable Mutex mu_;
  /// One entry per record, encoded (payload bytes, unframed).
  std::vector<std::string> encoded_ SEMCC_GUARDED_BY(mu_);
  /// Parallel to encoded_.
  std::vector<Lsn> lsns_ SEMCC_GUARDED_BY(mu_);
  /// Records [0, stable_) survive a crash.
  size_t stable_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t stable_bytes_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t flushes_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t appends_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t flush_retries_ SEMCC_GUARDED_BY(mu_) = 0;
  /// First device failure; sticky (the degraded/read-only state).
  Status failed_ SEMCC_GUARDED_BY(mu_);
  std::atomic<Lsn> next_lsn_{1};
  metrics::AtomicHistogram flush_micros_;
  metrics::AtomicHistogram flush_batch_records_;
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_WAL_H_
