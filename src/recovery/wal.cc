#include "recovery/wal.h"

#include <chrono>
#include <thread>

#include "util/logging.h"

namespace semcc {

Lsn WriteAheadLog::Append(LogRecord record) {
  MutexLock guard(mu_);
  record.lsn = next_lsn_.fetch_add(1);
  encoded_.push_back(record.Encode());
  lsns_.push_back(record.lsn);
  return record.lsn;
}

void WriteAheadLog::Flush() {
  if (flush_micros_ > 0) {
    // Simulated stable-storage latency (an fsync). The log device is a
    // single serialized resource: concurrent flushes queue behind each
    // other — which is exactly why group commit pays off. Paid OUTSIDE the
    // append lock so writers are not stalled by the device.
    MutexLock device(device_mu_);
    std::this_thread::sleep_for(std::chrono::microseconds(flush_micros_));
  }
  MutexLock guard(mu_);
  for (size_t i = stable_; i < encoded_.size(); ++i) {
    stable_bytes_ += encoded_[i].size();
  }
  stable_ = encoded_.size();
  flushes_++;
}

void WriteAheadLog::LoseVolatileTail() {
  MutexLock guard(mu_);
  encoded_.resize(stable_);
  lsns_.resize(stable_);
}

std::vector<LogRecord> WriteAheadLog::StableRecords() const {
  MutexLock guard(mu_);
  std::vector<LogRecord> out;
  out.reserve(stable_);
  for (size_t i = 0; i < stable_; ++i) {
    auto rec = LogRecord::Decode(encoded_[i]);
    SEMCC_CHECK(rec.ok()) << "log corruption: " << rec.status().ToString();
    out.push_back(std::move(rec).ValueUnsafe());
  }
  return out;
}

std::vector<LogRecord> WriteAheadLog::AllRecords() const {
  MutexLock guard(mu_);
  std::vector<LogRecord> out;
  out.reserve(encoded_.size());
  for (const std::string& bytes : encoded_) {
    auto rec = LogRecord::Decode(bytes);
    SEMCC_CHECK(rec.ok()) << "log corruption: " << rec.status().ToString();
    out.push_back(std::move(rec).ValueUnsafe());
  }
  return out;
}

size_t WriteAheadLog::stable_count() const {
  MutexLock guard(mu_);
  return stable_;
}

size_t WriteAheadLog::total_count() const {
  MutexLock guard(mu_);
  return encoded_.size();
}

uint64_t WriteAheadLog::stable_bytes() const {
  MutexLock guard(mu_);
  return stable_bytes_;
}

uint64_t WriteAheadLog::flush_count() const {
  MutexLock guard(mu_);
  return flushes_;
}

Lsn WriteAheadLog::stable_lsn() const {
  MutexLock guard(mu_);
  return stable_ == 0 ? 0 : lsns_[stable_ - 1];
}

}  // namespace semcc
