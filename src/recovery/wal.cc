#include "recovery/wal.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace semcc {

namespace {

/// Depth of the flush pipeline: one batch syncing on the device while the
/// next one is being claimed and encoded. Two is the sweet spot — the
/// encode is much cheaper than an fsync, so a deeper pipeline only grows
/// batch-slot wait queues without overlapping any more work.
constexpr size_t kMaxInflightBatches = 2;

/// WAL events have no ProtocolOptions to consult, so they gate on the
/// process-wide switch only.
void EmitWalEvent(trace::EventKind kind, uint64_t lsn_or_zero, uint64_t other,
                  uint64_t value) {
  trace::Event e;
  e.kind = static_cast<uint8_t>(kind);
  e.txn = lsn_or_zero;
  e.other = other;
  e.value = value;
  trace::Emit(e);
}

}  // namespace

std::string WalStats::ToJson() const {
  metrics::JsonWriter w;
  w.Field("appends", appends);
  w.Field("flushes", flushes);
  w.Field("flush_retries", flush_retries);
  w.Field("degraded", degraded);
  w.Field("stable_records", stable_records);
  w.Field("stable_bytes", stable_bytes);
  w.Field("retained_records", retained_records);
  w.Field("truncated_records", truncated_records);
  w.Field("flush_p50_us", flush_micros.p50);
  w.Field("flush_p99_us", flush_micros.p99);
  w.Field("flush_max_us", flush_micros.max);
  w.Field("flush_batch_mean", flush_batch_records.mean());
  w.Field("flush_batch_max", flush_batch_records.max);
  return w.Close();
}

WriteAheadLog::WriteAheadLog(uint32_t flush_micros)
    : options_(WalOptions()),
      device_(std::make_unique<InMemoryLogDevice>(flush_micros)) {}

WriteAheadLog::WriteAheadLog(std::unique_ptr<LogDevice> device,
                             WalOptions options)
    : options_(options), device_(std::move(device)) {
  SEMCC_CHECK(device_ != nullptr);
  SEMCC_CHECK(options_.max_flush_attempts >= 1);
}

Result<std::vector<LogRecord>> WriteAheadLog::RecoverAtStartup() {
  MutexLock device_guard(device_mu_);
  auto image = device_->ReadDurable();
  SEMCC_RETURN_NOT_OK(image.status());
  auto scan = logframe::ScanFrames(*image);
  SEMCC_RETURN_NOT_OK(scan.status());
  if (scan->truncated_tail) {
    // Separate real torn bytes from trailing zeros: a preallocated segment
    // reopens with its zero padding counted as logical content, and "torn
    // tail, 4 MiB dropped" on every clean restart would read as damage.
    size_t end = image->size();
    while (end > scan->valid_bytes && (*image)[end - 1] == '\0') end--;
    const uint64_t torn = end - scan->valid_bytes;
    const uint64_t padding = image->size() - end;
    if (torn > 0) {
      SEMCC_LOG(Warn) << "WAL restart: truncating torn tail at byte "
                      << scan->valid_bytes << " (dropping " << torn
                      << " torn bytes and " << padding
                      << " bytes of zero padding)";
    } else {
      SEMCC_LOG(Info) << "WAL restart: dropping " << padding
                      << " bytes of zero padding after byte "
                      << scan->valid_bytes;
    }
    SEMCC_RETURN_NOT_OK(device_->Truncate(scan->valid_bytes));
  }
  std::vector<LogRecord> out;
  out.reserve(scan->payloads.size());
  MutexLock guard(mu_);
  SEMCC_CHECK(encoded_.empty()) << "RecoverAtStartup after Append";
  Lsn max_lsn = 0;
  for (std::string& payload : scan->payloads) {
    auto rec = LogRecord::Decode(payload);
    if (!rec.ok()) {
      return Status::Corruption("log record undecodable after CRC pass: " +
                                rec.status().ToString());
    }
    max_lsn = std::max(max_lsn, rec.ValueOrDie().lsn);
    out.push_back(std::move(rec).ValueUnsafe());
    lsns_.push_back(out.back().lsn);
    encoded_.push_back(std::move(payload));
  }
  stable_ = encoded_.size();
  claimed_ = encoded_.size();
  stable_lsn_ = max_lsn;
  claimed_lsn_ = max_lsn;
  stable_bytes_ = scan->valid_bytes;
  next_lsn_.store(max_lsn + 1);
  return out;
}

Lsn WriteAheadLog::Append(LogRecord record) {
  MutexLock guard(mu_);
  if (!failed_.ok()) return kInvalidLsn;
  record.lsn = next_lsn_.fetch_add(1);
  encoded_.push_back(record.Encode());
  lsns_.push_back(record.lsn);
  appends_++;
  if (trace::Active(false)) {
    EmitWalEvent(trace::EventKind::kWalAppend, record.lsn, 0, 0);
  }
  return record.lsn;
}

Status WriteAheadLog::Flush() {
  Lsn target = 0;
  {
    MutexLock guard(mu_);
    if (!failed_.ok()) return failed_;
    // Records appended after this point belong to the next flush.
    target = lsns_.empty() ? stable_lsn_ : lsns_.back();
  }
  return FlushTo(target);
}

Status WriteAheadLog::FlushTo(Lsn target) {
  return FlushInternal(target, /*force_sync=*/false);
}

Status WriteAheadLog::FlushForce(Lsn target) {
  return FlushInternal(target, /*force_sync=*/true);
}

Status WriteAheadLog::FlushInternal(Lsn target, bool force_sync) {
  // --- claim phase (mu_ only) ---------------------------------------------
  std::string batch;
  size_t claim_end = 0;
  size_t batch_records = 0;
  Lsn batch_last_lsn = 0;
  uint64_t seq = 0;
  {
    MutexLock guard(mu_);
    for (;;) {
      if (!failed_.ok()) return failed_;
      if (force_sync) {
        // Force-per-commit semantics: this call issues its own device sync
        // even when the target is already durable — the naive baseline
        // (write; fsync) that group commit exists to amortize. It only
        // waits for a pipeline slot.
        if (inflight_ < kMaxInflightBatches && !truncating_) break;
        stable_cv_.Wait(guard);
        continue;
      }
      if (stable_lsn_ >= target) return Status::OK();
      const bool unclaimed = claimed_ < encoded_.size();
      if (!unclaimed && inflight_ == 0) {
        // Target beyond everything appended (or everything relevant already
        // claimed and published before we woke): nothing left to force.
        return Status::OK();
      }
      // Lead only if the target is not already covered by an in-flight
      // batch (absorption: a covered waiter parks, and the covering batch
      // carries its record); a pipeline slot is free; and no checkpoint
      // truncation is rewriting the vectors.
      if (target > claimed_lsn_ && unclaimed &&
          inflight_ < kMaxInflightBatches && !truncating_) {
        break;
      }
      stable_cv_.Wait(guard);
    }
    // Claim everything unclaimed — this is where group commit happens:
    // records appended while the previous batch was syncing all ride in
    // this one. Encoding under mu_ is fine; framing is memcpy+CRC, orders
    // of magnitude cheaper than the device sync it overlaps. (A force-sync
    // batch may claim nothing and still sync.)
    const size_t claim_begin = claimed_;
    claim_end = encoded_.size();
    batch_records = claim_end - claim_begin;
    for (size_t i = claim_begin; i < claim_end; ++i) {
      logframe::AppendFrame(&batch, encoded_[i]);
    }
    batch_last_lsn = batch_records > 0 ? lsns_[claim_end - 1] : claimed_lsn_;
    claimed_ = claim_end;
    claimed_lsn_ = batch_last_lsn;
    inflight_++;
    seq = next_batch_seq_++;
  }

  // --- device phase (device_mu_ only, in batch-sequence order) ------------
  StopWatch device_timer;
  Status st;
  uint64_t retries = 0;
  {
    MutexLock dev(device_mu_);
    while (device_turn_ != seq) device_cv_.Wait(dev);
    if (device_failed_) {
      // An earlier batch died after exhausting its retries; our frames
      // would leave an LSN hole after its missing bytes, so fail without
      // touching the device.
      st = Status::IOError("WAL device failed in an earlier pipelined batch");
    } else {
      // Late absorption: records appended while this batch waited for its
      // device turn would otherwise sit out a full extra sync (the eager
      // next leader has already split them into a third batch by the time
      // a 4-committer pipeline is warm). Extending the claim here — after
      // winning the turn, before the first device write — means every
      // batch carries everything appended before its sync started, which
      // is the whole group-commit win on a slow fsync.
      {
        MutexLock guard(mu_);
        if (!truncating_ && claimed_ < encoded_.size()) {
          const size_t from = claimed_;
          claim_end = encoded_.size();
          for (size_t i = from; i < claim_end; ++i) {
            logframe::AppendFrame(&batch, encoded_[i]);
          }
          batch_records += claim_end - from;
          batch_last_lsn = lsns_[claim_end - 1];
          claimed_ = claim_end;
          claimed_lsn_ = batch_last_lsn;
        }
      }
      // Time only the device work from here: the turn wait above overlaps
      // the previous batch's sync, and including it would inflate the p50
      // that sizes the adaptive window (a feedback loop — a longer window
      // reads as a slower device, which grows the window further).
      device_timer.Restart();
      bool appended = batch.empty();  // nothing to append on a bare force
      auto backoff = options_.flush_retry_backoff;
      for (int attempt = 0; attempt < options_.max_flush_attempts; ++attempt) {
        if (attempt > 0) {
          retries++;
          // Back off with device_mu_ released (timed condvar wait): it is
          // still our turn, so no other batch touches the device, but
          // turn-waiters keep getting scheduled and nothing sleeps holding
          // a lock.
          const auto deadline = std::chrono::steady_clock::now() + backoff;
          while (std::chrono::steady_clock::now() < deadline) {
            (void)device_cv_.WaitUntil(dev, deadline);
          }
          backoff *= 2;
        }
        if (!appended) {
          const uint64_t pre = device_->written_bytes();
          st = device_->Append(batch);
          if (!st.ok()) {
            // A torn append left a partial frame; roll it back so the retry
            // (or the restart scan) never sees the batch twice. If even the
            // rollback fails the image is in an unknown state — degrade now
            // rather than risk double-writing frames.
            Status repair = device_->Truncate(pre);
            if (!repair.ok()) {
              st = Status::IOError("log append failed (" + st.ToString() +
                                   ") and tail rollback failed (" +
                                   repair.ToString() + ")");
              break;
            }
            continue;
          }
          appended = true;
        }
        // Bytes stay appended across sync retries — only the fsync reruns.
        st = device_->Sync();
        if (st.ok()) break;
      }
      if (!st.ok()) device_failed_ = true;
    }
    device_turn_++;
    device_cv_.NotifyAll();
  }

  // --- publish phase (mu_ only) -------------------------------------------
  // Publishes may arrive out of batch order (the later batch can win the
  // race to mu_), but that is safe: when batch N+1's sync returned OK,
  // batch N's bytes were already durable (turn order), so advancing the
  // stable watermark past both is correct — hence the max().
  const uint64_t device_us = device_timer.ElapsedMicros();
  MutexLock guard(mu_);
  inflight_--;
  flush_retries_ += retries;
  if (!st.ok()) {
    if (failed_.ok()) {
      SEMCC_LOG(Error) << "WAL degraded to read-only after "
                       << options_.max_flush_attempts
                       << " flush attempts: " << st.ToString();
      failed_ = st;
      if (trace::Active(false)) {
        EmitWalEvent(trace::EventKind::kWalDegrade, 0, batch_records,
                     device_us);
      }
    }
    stable_cv_.NotifyAll();
    return st;
  }
  stable_ = std::max(stable_, claim_end);
  stable_lsn_ = std::max(stable_lsn_, batch_last_lsn);
  stable_bytes_ += batch.size();
  flushes_++;
  flush_micros_.Add(device_us);
  flush_batch_records_.Add(batch_records);
  if (trace::Active(false)) {
    EmitWalEvent(trace::EventKind::kWalFlush, batch_last_lsn, batch_records,
                 device_us);
  }
  stable_cv_.NotifyAll();
  return Status::OK();
}

Result<size_t> WriteAheadLog::TruncateCheckpointed(Lsn up_to) {
  size_t n = 0;
  uint64_t framed = 0;
  {
    MutexLock guard(mu_);
    // Serialize truncators, then block new claims (truncating_) *before*
    // draining in-flight batches — otherwise a steady commit stream keeps
    // inflight_ > 0 forever and the truncation starves.
    while (truncating_ && failed_.ok()) stable_cv_.Wait(guard);
    if (!failed_.ok()) return failed_;
    truncating_ = true;
    while (inflight_ > 0 && failed_.ok()) stable_cv_.Wait(guard);
    if (!failed_.ok()) {
      truncating_ = false;
      stable_cv_.NotifyAll();
      return failed_;
    }
    while (n < stable_ && lsns_[n] < up_to) {
      framed += encoded_[n].size() + logframe::kHeaderSize;
      ++n;
    }
    if (n == 0) {
      truncating_ = false;
      stable_cv_.NotifyAll();
      return size_t{0};
    }
  }
  // Device prefix release outside mu_ (it may unlink files + fsync the
  // directory). truncating_ keeps claims out; appends and stable reads
  // proceed — they only touch the record suffix we are not erasing.
  Result<uint64_t> dropped = [&]() -> Result<uint64_t> {
    MutexLock dev(device_mu_);
    return device_->DropPrefix(framed);
  }();
  MutexLock guard(mu_);
  truncating_ = false;
  stable_cv_.NotifyAll();
  if (!dropped.ok()) return dropped.status();
  // Drop the full record prefix from memory even when the device freed
  // fewer bytes (whole-segment granularity): the retained device image is
  // a superset of the retained records, and the restart scan replays from
  // the device, not from these vectors. Memory boundedness is what this
  // call is for.
  encoded_.erase(encoded_.begin(), encoded_.begin() + static_cast<long>(n));
  lsns_.erase(lsns_.begin(), lsns_.begin() + static_cast<long>(n));
  base_records_ += n;
  stable_ -= n;
  claimed_ -= n;
  stable_bytes_ -= std::min<uint64_t>(stable_bytes_, dropped.ValueOrDie());
  if (trace::Active(false)) {
    EmitWalEvent(trace::EventKind::kWalCheckpoint, up_to, n,
                 dropped.ValueOrDie());
  }
  return n;
}

void WriteAheadLog::LoseVolatileTail() {
  MutexLock guard(mu_);
  SEMCC_CHECK(inflight_ == 0) << "LoseVolatileTail with a flush in flight";
  encoded_.resize(stable_);
  lsns_.resize(stable_);
  claimed_ = stable_;
  claimed_lsn_ = stable_lsn_;
}

Result<std::vector<LogRecord>> WriteAheadLog::StableRecords() const {
  MutexLock guard(mu_);
  std::vector<LogRecord> out;
  out.reserve(stable_);
  for (size_t i = 0; i < stable_; ++i) {
    auto rec = LogRecord::Decode(encoded_[i]);
    if (!rec.ok()) {
      return Status::Corruption("stable log record " + std::to_string(i) +
                                " undecodable: " + rec.status().ToString());
    }
    out.push_back(std::move(rec).ValueUnsafe());
  }
  return out;
}

Result<std::vector<LogRecord>> WriteAheadLog::AllRecords() const {
  MutexLock guard(mu_);
  std::vector<LogRecord> out;
  out.reserve(encoded_.size());
  for (size_t i = 0; i < encoded_.size(); ++i) {
    auto rec = LogRecord::Decode(encoded_[i]);
    if (!rec.ok()) {
      return Status::Corruption("log record " + std::to_string(i) +
                                " undecodable: " + rec.status().ToString());
    }
    out.push_back(std::move(rec).ValueUnsafe());
  }
  return out;
}

WalStats WriteAheadLog::stats() const {
  WalStats s;
  {
    MutexLock guard(mu_);
    s.appends = appends_;
    s.flushes = flushes_;
    s.flush_retries = flush_retries_;
    s.degraded = !failed_.ok();
    s.stable_records = base_records_ + stable_;
    s.stable_bytes = stable_bytes_;
    s.retained_records = encoded_.size();
    s.truncated_records = base_records_;
  }
  s.flush_micros = flush_micros_.Snapshot();
  s.flush_batch_records = flush_batch_records_.Snapshot();
  return s;
}

Status WriteAheadLog::health() const {
  MutexLock guard(mu_);
  return failed_;
}

size_t WriteAheadLog::stable_count() const {
  MutexLock guard(mu_);
  return base_records_ + stable_;
}

size_t WriteAheadLog::total_count() const {
  MutexLock guard(mu_);
  return base_records_ + encoded_.size();
}

size_t WriteAheadLog::retained_count() const {
  MutexLock guard(mu_);
  return encoded_.size();
}

size_t WriteAheadLog::truncated_count() const {
  MutexLock guard(mu_);
  return base_records_;
}

uint64_t WriteAheadLog::stable_bytes() const {
  MutexLock guard(mu_);
  return stable_bytes_;
}

uint64_t WriteAheadLog::flush_count() const {
  MutexLock guard(mu_);
  return flushes_;
}

Lsn WriteAheadLog::stable_lsn() const {
  MutexLock guard(mu_);
  return stable_lsn_;
}

Lsn WriteAheadLog::claimed_lsn() const {
  MutexLock guard(mu_);
  return claimed_lsn_;
}

size_t WriteAheadLog::inflight_batches() const {
  MutexLock guard(mu_);
  return inflight_;
}

void WriteAheadLog::CorruptRecordForTesting(size_t index) {
  MutexLock guard(mu_);
  SEMCC_CHECK(index < encoded_.size());
  SEMCC_CHECK(!encoded_[index].empty());
  encoded_[index].pop_back();
}

}  // namespace semcc
