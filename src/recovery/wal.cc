#include "recovery/wal.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace semcc {

namespace {

/// WAL events have no ProtocolOptions to consult, so they gate on the
/// process-wide switch only.
void EmitWalEvent(trace::EventKind kind, uint64_t lsn_or_zero, uint64_t other,
                  uint64_t value) {
  trace::Event e;
  e.kind = static_cast<uint8_t>(kind);
  e.txn = lsn_or_zero;
  e.other = other;
  e.value = value;
  trace::Emit(e);
}

}  // namespace

std::string WalStats::ToJson() const {
  metrics::JsonWriter w;
  w.Field("appends", appends);
  w.Field("flushes", flushes);
  w.Field("flush_retries", flush_retries);
  w.Field("degraded", degraded);
  w.Field("stable_records", stable_records);
  w.Field("stable_bytes", stable_bytes);
  w.Field("flush_p50_us", flush_micros.p50);
  w.Field("flush_p99_us", flush_micros.p99);
  w.Field("flush_max_us", flush_micros.max);
  w.Field("flush_batch_mean", flush_batch_records.mean());
  w.Field("flush_batch_max", flush_batch_records.max);
  return w.Close();
}

WriteAheadLog::WriteAheadLog(uint32_t flush_micros)
    : options_(WalOptions()),
      device_(std::make_unique<InMemoryLogDevice>(flush_micros)) {}

WriteAheadLog::WriteAheadLog(std::unique_ptr<LogDevice> device,
                             WalOptions options)
    : options_(options), device_(std::move(device)) {
  SEMCC_CHECK(device_ != nullptr);
  SEMCC_CHECK(options_.max_flush_attempts >= 1);
}

Result<std::vector<LogRecord>> WriteAheadLog::RecoverAtStartup() {
  MutexLock device_guard(device_mu_);
  auto image = device_->ReadDurable();
  SEMCC_RETURN_NOT_OK(image.status());
  auto scan = logframe::ScanFrames(*image);
  SEMCC_RETURN_NOT_OK(scan.status());
  if (scan->truncated_tail) {
    SEMCC_LOG(Warn) << "WAL restart: truncating torn tail at byte "
                    << scan->valid_bytes << " (dropping "
                    << image->size() - scan->valid_bytes << " bytes)";
    SEMCC_RETURN_NOT_OK(device_->Truncate(scan->valid_bytes));
  }
  std::vector<LogRecord> out;
  out.reserve(scan->payloads.size());
  MutexLock guard(mu_);
  SEMCC_CHECK(encoded_.empty()) << "RecoverAtStartup after Append";
  Lsn max_lsn = 0;
  for (std::string& payload : scan->payloads) {
    auto rec = LogRecord::Decode(payload);
    if (!rec.ok()) {
      return Status::Corruption("log record undecodable after CRC pass: " +
                                rec.status().ToString());
    }
    max_lsn = std::max(max_lsn, rec.ValueOrDie().lsn);
    out.push_back(std::move(rec).ValueUnsafe());
    lsns_.push_back(out.back().lsn);
    encoded_.push_back(std::move(payload));
  }
  stable_ = encoded_.size();
  stable_bytes_ = scan->valid_bytes;
  next_lsn_.store(max_lsn + 1);
  return out;
}

Lsn WriteAheadLog::Append(LogRecord record) {
  MutexLock guard(mu_);
  if (!failed_.ok()) return kInvalidLsn;
  record.lsn = next_lsn_.fetch_add(1);
  encoded_.push_back(record.Encode());
  lsns_.push_back(record.lsn);
  appends_++;
  if (trace::Active(false)) {
    EmitWalEvent(trace::EventKind::kWalAppend, record.lsn, 0, 0);
  }
  return record.lsn;
}

Status WriteAheadLog::Flush() {
  MutexLock device_guard(device_mu_);
  // Snapshot the pending records into one framed batch. Records appended
  // after this point belong to the next flush.
  std::string batch;
  size_t snapshot = 0;
  size_t batch_records = 0;
  {
    MutexLock guard(mu_);
    if (!failed_.ok()) return failed_;
    snapshot = encoded_.size();
    batch_records = snapshot - stable_;
    for (size_t i = stable_; i < snapshot; ++i) {
      logframe::AppendFrame(&batch, encoded_[i]);
    }
  }
  if (batch.empty()) return Status::OK();

  StopWatch device_timer;
  uint64_t retries = 0;
  Status st;
  bool appended = false;
  auto backoff = options_.flush_retry_backoff;
  for (int attempt = 0; attempt < options_.max_flush_attempts; ++attempt) {
    if (attempt > 0) {
      retries++;
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    if (!appended) {
      const uint64_t pre = device_->written_bytes();
      st = device_->Append(batch);
      if (!st.ok()) {
        // A torn append left a partial frame; roll it back so the retry
        // (or the restart scan) never sees the batch twice. If even the
        // rollback fails the image is in an unknown state — degrade now
        // rather than risk double-writing frames.
        Status repair = device_->Truncate(pre);
        if (!repair.ok()) {
          st = Status::IOError("log append failed (" + st.ToString() +
                               ") and tail rollback failed (" +
                               repair.ToString() + ")");
          break;
        }
        continue;
      }
      appended = true;
    }
    // Bytes stay appended across sync retries — only the fsync reruns.
    st = device_->Sync();
    if (st.ok()) break;
  }

  const uint64_t device_us = device_timer.ElapsedMicros();
  MutexLock guard(mu_);
  flush_retries_ += retries;
  if (!st.ok()) {
    SEMCC_LOG(Error) << "WAL degraded to read-only after "
                     << options_.max_flush_attempts
                     << " flush attempts: " << st.ToString();
    failed_ = st;
    if (trace::Active(false)) {
      EmitWalEvent(trace::EventKind::kWalDegrade, 0, batch_records, device_us);
    }
    return st;
  }
  stable_ = snapshot;
  stable_bytes_ += batch.size();
  flushes_++;
  flush_micros_.Add(device_us);
  flush_batch_records_.Add(batch_records);
  if (trace::Active(false)) {
    EmitWalEvent(trace::EventKind::kWalFlush, lsns_[snapshot - 1],
                 batch_records, device_us);
  }
  return Status::OK();
}

void WriteAheadLog::LoseVolatileTail() {
  MutexLock guard(mu_);
  encoded_.resize(stable_);
  lsns_.resize(stable_);
}

Result<std::vector<LogRecord>> WriteAheadLog::StableRecords() const {
  MutexLock guard(mu_);
  std::vector<LogRecord> out;
  out.reserve(stable_);
  for (size_t i = 0; i < stable_; ++i) {
    auto rec = LogRecord::Decode(encoded_[i]);
    if (!rec.ok()) {
      return Status::Corruption("stable log record " + std::to_string(i) +
                                " undecodable: " + rec.status().ToString());
    }
    out.push_back(std::move(rec).ValueUnsafe());
  }
  return out;
}

Result<std::vector<LogRecord>> WriteAheadLog::AllRecords() const {
  MutexLock guard(mu_);
  std::vector<LogRecord> out;
  out.reserve(encoded_.size());
  for (size_t i = 0; i < encoded_.size(); ++i) {
    auto rec = LogRecord::Decode(encoded_[i]);
    if (!rec.ok()) {
      return Status::Corruption("log record " + std::to_string(i) +
                                " undecodable: " + rec.status().ToString());
    }
    out.push_back(std::move(rec).ValueUnsafe());
  }
  return out;
}

WalStats WriteAheadLog::stats() const {
  WalStats s;
  {
    MutexLock guard(mu_);
    s.appends = appends_;
    s.flushes = flushes_;
    s.flush_retries = flush_retries_;
    s.degraded = !failed_.ok();
    s.stable_records = stable_;
    s.stable_bytes = stable_bytes_;
  }
  s.flush_micros = flush_micros_.Snapshot();
  s.flush_batch_records = flush_batch_records_.Snapshot();
  return s;
}

Status WriteAheadLog::health() const {
  MutexLock guard(mu_);
  return failed_;
}

size_t WriteAheadLog::stable_count() const {
  MutexLock guard(mu_);
  return stable_;
}

size_t WriteAheadLog::total_count() const {
  MutexLock guard(mu_);
  return encoded_.size();
}

uint64_t WriteAheadLog::stable_bytes() const {
  MutexLock guard(mu_);
  return stable_bytes_;
}

uint64_t WriteAheadLog::flush_count() const {
  MutexLock guard(mu_);
  return flushes_;
}

Lsn WriteAheadLog::stable_lsn() const {
  MutexLock guard(mu_);
  return stable_ == 0 ? 0 : lsns_[stable_ - 1];
}

void WriteAheadLog::CorruptRecordForTesting(size_t index) {
  MutexLock guard(mu_);
  SEMCC_CHECK(index < encoded_.size());
  SEMCC_CHECK(!encoded_[index].empty());
  encoded_[index].pop_back();
}

}  // namespace semcc
