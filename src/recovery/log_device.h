// LogDevice: the byte-level stable-storage abstraction underneath the WAL.
//
// The WAL thinks in records; a device thinks in bytes. Append() adds bytes
// to the device image (think: the OS page cache — nothing is promised until
// Sync() returns OK), Sync() is the fsync, and ReadDurable() is what a
// restart after a crash would read back. Any call may fail part-way: a torn
// Append leaves a partial frame on the image, a failed Sync leaves bytes in
// the cache that a power loss would drop. Recovery owns those failure modes
// (see logframe::ScanFrames and WriteAheadLog::RecoverAtStartup); devices
// just report them honestly through Status.
//
// Implementations: InMemoryLogDevice (below, the unit-test default),
// FileLogDevice (file_log_device.h, append-only segment files), and
// FaultInjector (fault_injector.h, a decorator that injects short writes,
// fsync EIO, and power cuts deterministically).
//
// Thread-safety: devices are externally serialized — the WAL calls them
// only under its device mutex. FaultInjector adds its own lock because
// tests reconfigure it concurrently.
#ifndef SEMCC_RECOVERY_LOG_DEVICE_H_
#define SEMCC_RECOVERY_LOG_DEVICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace semcc {

class LogDevice {
 public:
  virtual ~LogDevice() = default;

  /// Append bytes at the end of the device image. On failure a *prefix* of
  /// `bytes` may have reached the image (a torn write).
  virtual Status Append(std::string_view bytes) = 0;

  /// Make every appended byte durable (the fsync).
  virtual Status Sync() = 0;

  /// The image a restart would read back: everything a successful Sync has
  /// covered, plus — device permitting — torn bytes that happened to reach
  /// the medium before a crash.
  virtual Result<std::string> ReadDurable() = 0;

  /// Drop everything after the first `size` bytes (tail repair after a
  /// detected torn write).
  virtual Status Truncate(uint64_t size) = 0;

  /// Release up to the first `bytes` bytes of the image — a log prefix made
  /// redundant by a completed checkpoint. Implementations free storage at
  /// their own granularity and may drop *fewer* bytes (the file device only
  /// unlinks whole closed segments); dropping nothing is a valid
  /// implementation, which is also the base-class default. The caller must
  /// only name bytes that are already synced. After a drop, every offset
  /// (written_bytes / synced_bytes / Truncate sizes) is relative to the
  /// retained image. Returns the bytes actually dropped.
  virtual Result<uint64_t> DropPrefix(uint64_t bytes) {
    (void)bytes;
    return uint64_t{0};
  }

  /// Bytes accepted by Append so far (including torn prefixes).
  virtual uint64_t written_bytes() const = 0;
  /// Bytes covered by the last successful Sync.
  virtual uint64_t synced_bytes() const = 0;
  /// Successful Sync calls.
  virtual uint64_t sync_count() const = 0;
};

// --- record framing -------------------------------------------------------

namespace logframe {

/// Frame layout: u32 payload length | u32 masked CRC32C(payload) | payload.
/// Little-endian, matching util/coding.h. Payloads are never empty (an
/// encoded LogRecord has a fixed header), which ScanFrames relies on to
/// reject runs of zeros as frames. The stored CRC is masked (rotate +
/// constant) so payload byte patterns that hit the CRC's fixed points —
/// e.g. 0xff runs, whose CRC32C is 0xffffffff — cannot self-validate as
/// frames inside a torn tail.
constexpr size_t kHeaderSize = 8;
/// Sanity cap on a single payload; a length field above this is corruption,
/// not a frame.
constexpr uint32_t kMaxPayload = 1u << 30;

/// Append one framed payload to `*dst`.
void AppendFrame(std::string* dst, std::string_view payload);

struct Scan {
  /// Payload bytes of every intact frame, in log order.
  std::vector<std::string> payloads;
  /// Length of the image prefix that framed cleanly.
  uint64_t valid_bytes = 0;
  /// True if a torn/corrupt tail was dropped at valid_bytes.
  bool truncated_tail = false;
};

/// Walk `image` frame by frame, CRC-checking each payload.
///
/// The tail-truncation rule: a bad frame (short header, short payload,
/// implausible length, or CRC mismatch) with *no intact frame after it* is
/// a torn tail — the crash interrupted the last device write — and the scan
/// succeeds with everything before it. A bad frame *followed by* an intact
/// frame cannot be a tear (bytes after the damage survived), so the scan
/// refuses with Corruption rather than replaying around a hole.
Result<Scan> ScanFrames(std::string_view image);

}  // namespace logframe

// --- in-memory device -----------------------------------------------------

/// \brief The unit-test default device: a byte string plus a synced
/// watermark. ReadDurable returns only the synced prefix (a reboot loses
/// the cache), so a failed Sync genuinely loses bytes here too.
class InMemoryLogDevice : public LogDevice {
 public:
  /// \param sync_micros simulated stable-storage latency per Sync (models an
  /// fsync; 0 = free). With a non-zero cost, group commit pays off.
  explicit InMemoryLogDevice(uint32_t sync_micros = 0)
      : sync_micros_(sync_micros) {}
  /// Device with pre-existing durable content — how the crash-offset sweep
  /// materializes "the first k bytes reached the platter".
  explicit InMemoryLogDevice(std::string preloaded, uint32_t sync_micros = 0)
      : sync_micros_(sync_micros),
        image_(std::move(preloaded)),
        synced_(image_.size()) {}
  SEMCC_DISALLOW_COPY_AND_ASSIGN(InMemoryLogDevice);

  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Result<std::string> ReadDurable() override;
  Status Truncate(uint64_t size) override;
  Result<uint64_t> DropPrefix(uint64_t bytes) override;

  uint64_t written_bytes() const override { return image_.size(); }
  uint64_t synced_bytes() const override { return synced_; }
  uint64_t sync_count() const override { return syncs_; }

 private:
  const uint32_t sync_micros_;
  std::string image_;
  uint64_t synced_ = 0;
  uint64_t syncs_ = 0;
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_LOG_DEVICE_H_
