#include "recovery/log_device.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace semcc {

namespace logframe {

namespace {

/// The CRC stored in a frame header is masked (rotated plus a constant) so
/// that payload bytes which happen to carry the CRC's own fixed points
/// cannot self-validate as frames. Concretely: CRC32C of a run of 0xff
/// bytes (an encoded kInvalidOid!) is 0xffffffff, so without masking the
/// byte pattern `len | ff ff ff ff | ff...` inside a torn record tail
/// parses as an intact frame — and an "intact" frame after damage is
/// exactly what makes the scanner refuse a log as mid-log corrupt.
constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

}  // namespace

void AppendFrame(std::string* dst, std::string_view payload) {
  SEMCC_CHECK(!payload.empty()) << "log frames carry non-empty payloads";
  SEMCC_CHECK(payload.size() <= kMaxPayload);
  PutU32(dst, static_cast<uint32_t>(payload.size()));
  PutU32(dst, MaskCrc(crc32c::Value(payload)));
  dst->append(payload.data(), payload.size());
}

namespace {

/// Parse + CRC-validate a frame at `pos`; on success sets *len.
bool FrameAt(std::string_view image, size_t pos, uint32_t* len) {
  if (image.size() - pos < kHeaderSize) return false;
  uint32_t n = 0;
  uint32_t crc = 0;
  std::memcpy(&n, image.data() + pos, sizeof(n));
  std::memcpy(&crc, image.data() + pos + sizeof(n), sizeof(crc));
  if (n == 0 || n > kMaxPayload) return false;
  if (image.size() - pos - kHeaderSize < n) return false;
  if (MaskCrc(crc32c::Value(image.data() + pos + kHeaderSize, n)) != crc) {
    return false;
  }
  *len = n;
  return true;
}

}  // namespace

Result<Scan> ScanFrames(std::string_view image) {
  Scan out;
  size_t off = 0;
  while (off < image.size()) {
    uint32_t len = 0;
    if (FrameAt(image, off, &len)) {
      out.payloads.emplace_back(image.substr(off + kHeaderSize, len));
      off += kHeaderSize + len;
      continue;
    }
    // Bad frame at `off`. An intact frame anywhere after the damage means
    // later bytes survived — that is mid-log corruption, not a tear.
    for (size_t probe = off + 1; probe + kHeaderSize <= image.size(); ++probe) {
      // Skip zero runs in bulk — preallocated segments pad megabytes of
      // zeros after the last append, and probing them byte-by-byte would
      // dominate restart. A frame cannot start anywhere its 4-byte length
      // field lies wholly inside a zero run (zero length is invalid), so a
      // 64-byte zero window rules out all but its last 3 start positions.
      static constexpr char kZeros[64] = {};
      while (probe + sizeof(kZeros) <= image.size() &&
             std::memcmp(image.data() + probe, kZeros, sizeof(kZeros)) == 0) {
        probe += sizeof(kZeros) - 3;
      }
      if (probe + kHeaderSize > image.size()) break;
      uint32_t ignored = 0;
      if (FrameAt(image, probe, &ignored)) {
        return Status::Corruption(
            "log corrupt at byte " + std::to_string(off) +
            " with intact frames after it (not a torn tail) — refusing to "
            "replay around the hole");
      }
    }
    out.valid_bytes = off;
    out.truncated_tail = true;
    return out;
  }
  out.valid_bytes = off;
  return out;
}

}  // namespace logframe

// --- InMemoryLogDevice ----------------------------------------------------

Status InMemoryLogDevice::Append(std::string_view bytes) {
  image_.append(bytes.data(), bytes.size());
  return Status::OK();
}

Status InMemoryLogDevice::Sync() {
  if (sync_micros_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sync_micros_));
  }
  synced_ = image_.size();
  syncs_++;
  return Status::OK();
}

Result<std::string> InMemoryLogDevice::ReadDurable() {
  return image_.substr(0, synced_);
}

Status InMemoryLogDevice::Truncate(uint64_t size) {
  if (size < image_.size()) image_.resize(size);
  synced_ = std::min<uint64_t>(synced_, size);
  return Status::OK();
}

Result<uint64_t> InMemoryLogDevice::DropPrefix(uint64_t bytes) {
  // Only a synced prefix may be dropped (the caller guarantees this; clamp
  // defensively so a bug degrades to dropping less, never more).
  const uint64_t n = std::min<uint64_t>(bytes, synced_);
  image_.erase(0, n);
  synced_ -= n;
  return n;
}

}  // namespace semcc
