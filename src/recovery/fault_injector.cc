#include "recovery/fault_injector.h"

#include <algorithm>
#include <string>

namespace semcc {

Status FaultInjector::Append(std::string_view bytes) {
  MutexLock guard(mu_);
  if (powered_off_) return Status::IOError("simulated power loss");
  if (plan_.power_cut_after_bytes >= 0) {
    const uint64_t position = inner_->written_bytes();
    const auto cut = static_cast<uint64_t>(plan_.power_cut_after_bytes);
    if (position + bytes.size() >= cut) {
      // The bytes up to the cut offset reached the platter (worst case for
      // tearing: the write was mid-frame); everything after is gone.
      const uint64_t budget = cut > position ? cut - position : 0;
      (void)inner_->Append(bytes.substr(0, budget));
      (void)inner_->Sync();
      powered_off_ = true;
      return Status::IOError("simulated power loss at log byte " +
                             std::to_string(cut));
    }
  }
  if (plan_.short_write_bytes >= 0) {
    const auto n = std::min<uint64_t>(
        static_cast<uint64_t>(plan_.short_write_bytes), bytes.size());
    plan_.short_write_bytes = -1;
    short_writes_++;
    (void)inner_->Append(bytes.substr(0, n));
    return Status::IOError("injected short write (" + std::to_string(n) +
                           " of " + std::to_string(bytes.size()) + " bytes)");
  }
  return inner_->Append(bytes);
}

Status FaultInjector::Sync() {
  MutexLock guard(mu_);
  if (powered_off_) return Status::IOError("simulated power loss");
  if (plan_.fail_all_syncs || plan_.fail_next_syncs > 0) {
    if (plan_.fail_next_syncs > 0) plan_.fail_next_syncs--;
    sync_failures_++;
    return Status::IOError("injected fsync failure");
  }
  return inner_->Sync();
}

Result<std::string> FaultInjector::ReadDurable() {
  MutexLock guard(mu_);
  // Post-reboot view: works even after a power cut.
  return inner_->ReadDurable();
}

Status FaultInjector::Truncate(uint64_t size) {
  MutexLock guard(mu_);
  if (powered_off_) return Status::IOError("simulated power loss");
  return inner_->Truncate(size);
}

Result<uint64_t> FaultInjector::DropPrefix(uint64_t bytes) {
  MutexLock guard(mu_);
  if (powered_off_) return Status::IOError("simulated power loss");
  return inner_->DropPrefix(bytes);
}

void FaultInjector::SetPlan(FaultPlan plan) {
  MutexLock guard(mu_);
  plan_ = plan;
}

bool FaultInjector::powered_off() const {
  MutexLock guard(mu_);
  return powered_off_;
}

uint64_t FaultInjector::injected_sync_failures() const {
  MutexLock guard(mu_);
  return sync_failures_;
}

uint64_t FaultInjector::injected_short_writes() const {
  MutexLock guard(mu_);
  return short_writes_;
}

}  // namespace semcc
