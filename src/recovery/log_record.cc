#include "recovery/log_record.h"

#include <sstream>

#include "util/coding.h"

namespace semcc {

const char* LogTypeName(LogType type) {
  switch (type) {
    case LogType::kCreateAtomic:
      return "CreateAtomic";
    case LogType::kCreateTuple:
      return "CreateTuple";
    case LogType::kCreateSet:
      return "CreateSet";
    case LogType::kDestroy:
      return "Destroy";
    case LogType::kAtomWrite:
      return "AtomWrite";
    case LogType::kSetInsert:
      return "SetInsert";
    case LogType::kSetRemove:
      return "SetRemove";
    case LogType::kNamedRoot:
      return "NamedRoot";
    case LogType::kTxnBegin:
      return "TxnBegin";
    case LogType::kTxnCommit:
      return "TxnCommit";
    case LogType::kTxnAbort:
      return "TxnAbort";
    case LogType::kMethodCommit:
      return "MethodCommit";
    case LogType::kLeafPut:
      return "LeafPut";
    case LogType::kLeafSetInsert:
      return "LeafSetInsert";
    case LogType::kLeafSetRemove:
      return "LeafSetRemove";
    case LogType::kCkptBegin:
      return "CkptBegin";
    case LogType::kCkptEnd:
      return "CkptEnd";
  }
  return "?";
}

std::string LogRecord::Encode() const {
  std::string out;
  PutU64(&out, lsn);
  PutU8(&out, static_cast<uint8_t>(type));
  PutU64(&out, txn);
  PutU64(&out, subtxn);
  PutU64(&out, parent);
  PutU64(&out, object);
  PutU32(&out, obj_type);
  PutU64(&out, aux_oid);
  PutU8(&out, flag ? 1 : 0);
  PutLengthPrefixed(&out, method);
  PutLengthPrefixed(&out, name);
  PutU32(&out, static_cast<uint32_t>(args.size()));
  for (const Value& a : args) PutLengthPrefixed(&out, a.Serialize());
  PutLengthPrefixed(&out, value.Serialize());
  PutU32(&out, static_cast<uint32_t>(components.size()));
  for (const auto& [cname, coid] : components) {
    PutLengthPrefixed(&out, cname);
    PutU64(&out, coid);
  }
  PutU32(&out, static_cast<uint32_t>(path.size()));
  for (TxnId id : path) PutU64(&out, id);
  return out;
}

Result<LogRecord> LogRecord::Decode(std::string_view bytes) {
  LogRecord rec;
  Decoder dec(bytes);
  uint8_t type_byte = 0;
  uint8_t flag_byte = 0;
  if (!dec.GetU64(&rec.lsn) || !dec.GetU8(&type_byte) || !dec.GetU64(&rec.txn) ||
      !dec.GetU64(&rec.subtxn) || !dec.GetU64(&rec.parent) ||
      !dec.GetU64(&rec.object) || !dec.GetU32(&rec.obj_type) ||
      !dec.GetU64(&rec.aux_oid) || !dec.GetU8(&flag_byte)) {
    return Status::Corruption("truncated log record header");
  }
  rec.type = static_cast<LogType>(type_byte);
  rec.flag = flag_byte != 0;
  std::string blob;
  if (!dec.GetLengthPrefixed(&rec.method)) {
    return Status::Corruption("truncated method");
  }
  if (!dec.GetLengthPrefixed(&rec.name)) {
    return Status::Corruption("truncated name");
  }
  uint32_t nargs = 0;
  if (!dec.GetU32(&nargs)) return Status::Corruption("truncated arg count");
  for (uint32_t i = 0; i < nargs; ++i) {
    if (!dec.GetLengthPrefixed(&blob)) return Status::Corruption("truncated arg");
    SEMCC_ASSIGN_OR_RETURN(Value v, Value::Deserialize(blob));
    rec.args.push_back(std::move(v));
  }
  if (!dec.GetLengthPrefixed(&blob)) return Status::Corruption("truncated value");
  SEMCC_ASSIGN_OR_RETURN(rec.value, Value::Deserialize(blob));
  uint32_t ncomp = 0;
  if (!dec.GetU32(&ncomp)) return Status::Corruption("truncated component count");
  for (uint32_t i = 0; i < ncomp; ++i) {
    std::string cname;
    uint64_t coid;
    if (!dec.GetLengthPrefixed(&cname) || !dec.GetU64(&coid)) {
      return Status::Corruption("truncated component");
    }
    rec.components.emplace_back(std::move(cname), coid);
  }
  uint32_t npath = 0;
  if (!dec.GetU32(&npath)) return Status::Corruption("truncated path count");
  for (uint32_t i = 0; i < npath; ++i) {
    uint64_t id;
    if (!dec.GetU64(&id)) return Status::Corruption("truncated path entry");
    rec.path.push_back(id);
  }
  if (!dec.empty()) return Status::Corruption("trailing bytes in log record");
  return rec;
}

std::string LogRecord::ToString() const {
  std::ostringstream out;
  out << "[" << lsn << "] " << LogTypeName(type);
  if (txn != 0) out << " txn=" << txn;
  if (subtxn != 0) out << " sub=" << subtxn;
  if (object != kInvalidOid) out << " obj=@" << object;
  if (!method.empty()) out << " " << method << ArgsToString(args);
  if (!name.empty()) out << " name=" << name;
  return out.str();
}

}  // namespace semcc
