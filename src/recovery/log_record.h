// Log records for multi-level (open nested) recovery.
//
// The paper defers recovery to future work and points at the multi-level
// recovery line [WHBM90, HW91]: REDO is physical (state changes of the
// storage-level objects), UNDO is *logical* — committed subtransactions are
// compensated by their registered semantic inverses, exactly like online
// abort (§3). The log therefore carries two strata:
//   * physical records emitted by the object store (creates, atom writes,
//     set inserts/removes, destroys, named roots) — replayed in LSN order
//     they rebuild the crash-time state from nothing;
//   * transactional records emitted by the execution engine (txn begin /
//     commit / abort, method-commit with undo information, leaf-commit with
//     before-images) — they let restart reconstruct the action trees of
//     loser transactions and run the same compensation recursion the online
//     abort path uses.
#ifndef SEMCC_RECOVERY_LOG_RECORD_H_
#define SEMCC_RECOVERY_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cc/subtxn.h"
#include "object/oid.h"
#include "object/value.h"
#include "util/result.h"

namespace semcc {

using Lsn = uint64_t;
constexpr Lsn kInvalidLsn = 0;

enum class LogType : uint8_t {
  // Physical (redo) records.
  kCreateAtomic = 1,   // object, obj_type, value = initial
  kCreateTuple = 2,    // object, obj_type, components
  kCreateSet = 3,      // object, obj_type
  kDestroy = 4,        // object
  kAtomWrite = 5,      // object, value = after-image
  kSetInsert = 6,      // object = set, args[0] = key, aux_oid = member
  kSetRemove = 7,      // object = set, args[0] = key, aux_oid = member
  kNamedRoot = 8,      // name, object
  // Transactional (undo information) records.
  kTxnBegin = 16,      // txn
  kTxnCommit = 17,     // txn
  kTxnAbort = 18,      // txn (written after compensation completed)
  kMethodCommit = 19,  // txn, subtxn, parent, object, obj_type, method, args,
                       // value = result, flag = has registered (total) inverse
  kLeafPut = 20,       // txn, subtxn, parent, object, value = BEFORE-image
  kLeafSetInsert = 21, // txn, subtxn, parent, object = set, args[0] = key
  kLeafSetRemove = 22, // txn, subtxn, parent, object = set, args[0] = key,
                       // aux_oid = removed member
  // Checkpoint region markers (online fuzzy checkpoints; see
  // recovery_manager.h). Between kCkptBegin and kCkptEnd the log carries a
  // restore-record dump of the live object graph; REDO starts at the last
  // *complete* (Begin..End) checkpoint and treats the region's records as
  // idempotent (AlreadyExists/NotFound are benign there, because online
  // records of concurrent transactions interleave with the fuzzy dump).
  kCkptBegin = 30,     // (no payload)
  kCkptEnd = 31,       // txn = lsn of the matching kCkptBegin
};

const char* LogTypeName(LogType type);

/// \brief One log record. Field use depends on `type` (see LogType).
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  LogType type = LogType::kTxnBegin;
  TxnId txn = 0;
  TxnId subtxn = 0;
  TxnId parent = 0;
  Oid object = kInvalidOid;
  TypeId obj_type = kInvalidTypeId;
  Oid aux_oid = kInvalidOid;
  bool flag = false;
  std::string method;
  std::string name;
  Args args;
  Value value;
  std::vector<std::pair<std::string, Oid>> components;
  /// Transactional records: proper-ancestor subtransaction ids, bottom-up
  /// (parent first, root last). Restart uses it to decide whether a
  /// committed action is covered by a committed ancestor's total inverse.
  std::vector<TxnId> path;

  /// Binary round-trip (the "disk format" of the log).
  std::string Encode() const;
  static Result<LogRecord> Decode(std::string_view bytes);

  std::string ToString() const;
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_LOG_RECORD_H_
