// FileLogDevice: the durable LogDevice — append-only segment files in a
// directory, written through the POSIX write()/fsync() path
// (storage/posix_file.h).
//
// Layout: <dir>/wal-000001.log, wal-000002.log, ... The logical device
// image is the concatenation of the segments in index order; framing is the
// WAL's business (logframe), so segments are plain byte streams and a
// restart scan never needs per-segment metadata. Rotation happens between
// Appends once the current segment reaches segment_bytes: the old segment
// is fsynced and closed, the new one is created, and the directory is
// fsynced so the creation itself is durable.
//
// ReadDurable() returns the files' current contents. In-process that
// includes OS-cached bytes a real power loss would drop — the process
// cannot observe its own page cache — which is exactly why the
// fault-injection harness (fault_injector.h) models sync failures and
// power cuts explicitly instead of relying on the filesystem to misbehave
// on cue.
#ifndef SEMCC_RECOVERY_FILE_LOG_DEVICE_H_
#define SEMCC_RECOVERY_FILE_LOG_DEVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "recovery/log_device.h"
#include "storage/posix_file.h"

namespace semcc {

struct FileLogDeviceOptions {
  /// Rotate to a new segment once the current one reaches this size.
  uint64_t segment_bytes = 4u << 20;
  /// Preallocate each fresh segment with written-through zeros so commit
  /// syncs are pure data overwrites (no block allocation or inode update in
  /// the journal — roughly halves fdatasync latency on ext4 and collapses
  /// its tail). The padding beyond the last append reads back as zeros,
  /// which the frame scanner treats as a torn tail and RecoverAtStartup
  /// truncates away — so a reopened log must run recovery before appending
  /// (the WAL always does).
  bool preallocate = true;
};

class FileLogDevice : public LogDevice {
 public:
  /// Open (creating the directory if needed) and position at the end of the
  /// existing segments; their bytes count as durable.
  static Result<std::unique_ptr<FileLogDevice>> Open(
      const std::string& dir, FileLogDeviceOptions options = {});
  SEMCC_DISALLOW_COPY_AND_ASSIGN(FileLogDevice);

  Status Append(std::string_view bytes) override;
  Status Sync() override;
  Result<std::string> ReadDurable() override;
  Status Truncate(uint64_t size) override;
  /// Unlinks the closed segments that lie entirely inside the prefix (whole
  /// segments only — a batch append never spans a rotation, so segment
  /// boundaries are always frame boundaries). Restart tolerates a first
  /// segment index > 1; only gaps are corruption.
  Result<uint64_t> DropPrefix(uint64_t bytes) override;

  uint64_t written_bytes() const override {
    return closed_bytes_ + current_.size();
  }
  uint64_t synced_bytes() const override { return synced_; }
  uint64_t sync_count() const override { return syncs_; }

  size_t segment_count() const { return closed_.size() + 1; }
  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    uint32_t index;
    uint64_t size;
  };

  FileLogDevice(std::string dir, FileLogDeviceOptions options)
      : dir_(std::move(dir)), options_(options) {}

  std::string SegmentPath(uint32_t index) const;
  /// Sync + close the current segment and start the next one.
  Status Rotate();

  const std::string dir_;
  const FileLogDeviceOptions options_;
  /// Closed (immutable, already-fsynced) segments in index order.
  std::vector<Segment> closed_;
  uint64_t closed_bytes_ = 0;
  /// The segment being appended to.
  PosixWritableFile current_;
  uint32_t current_index_ = 1;
  uint64_t synced_ = 0;
  uint64_t syncs_ = 0;
};

}  // namespace semcc

#endif  // SEMCC_RECOVERY_FILE_LOG_DEVICE_H_
