// VersionedObjectStore: the multi-version read path beside the semantic
// lock manager (DESIGN.md §5.7).
//
// Read-only transactions running in snapshot mode never touch the lock
// manager: they register a snapshot timestamp S here and read, per object,
// the newest version with ts <= S from a lock-free per-OID version chain.
// Writers keep using the live ObjectStore in place (the semantic protocol
// depends on in-place state for commuting updates); this layer only decides
// WHEN a live state becomes a published, commit-consistent version.
//
// The central difficulty is *entanglement*: under semantic concurrency
// control two commuting writers may interleave in-place updates on the same
// object (two ChangeStatus on one Status atom, Case-1-relieved QuantityOnHand
// updates), so at one writer's commit the live bytes may contain another
// writer's uncommitted effects. Stamping a version at that moment would leak
// a partial transaction into every later snapshot. The fix is commit-group
// deferred installation:
//
//  * BeginWrite(oid) counts the active writers of every object (first write
//    per transaction per object).
//  * OnTxnEnd(root, write_set) decrements those counts and parks the
//    finished transaction in a pending list. A connected component of
//    pending transactions (connected = overlapping write sets) installs as
//    ONE group the moment none of its objects has an active writer left:
//    the live values are then clean — every transaction that touched them
//    has completed — and, because only *commuting* operations ever overlap
//    under the protocol, the merged bytes equal some serial execution of the
//    group. The whole group gets a single commit timestamp, so snapshots
//    are all-or-nothing per group (and a fortiori per transaction).
//  * Aborted transactions take the same path after compensation: the
//    post-compensation live state is a legitimate committed-equivalent
//    state (semantic compensation does not necessarily restore the exact
//    prior bytes), so it is published like a commit. Read-only trees (empty
//    write set) never enter the pending list.
//
// One documented relaxation follows from deferral: a snapshot taken after
// Run() returned may still miss that transaction's writes while a commuting
// writer of the same objects is in flight — the snapshot is always
// commit-consistent, but can lag entangled commits. (The locking protocol
// "solves" the same situation by making the reader root-wait; this layer
// trades that wait for bounded staleness.)
//
// Version publication and reclamation (memory-ordering contract, §5.7):
// chains are singly linked, newest first, head is an atomic published with
// release after the node is fully initialized; readers load it with acquire
// and walk without locks. Every chain is created (with a ts=0 *base*
// version capturing the pre-first-write committed value) under the store
// mutex BEFORE the first physical write to the object, so a reader that
// falls back to the live store for a never-written object revalidates
// chain absence afterwards and can never return a half-written value: if it
// observed a writer's bytes through the object store's internal latch, that
// same latch edge makes the chain visible to the revalidation. Reclamation
// is watermark-based: the watermark is the oldest registered snapshot
// (registration shares the store mutex with the watermark computation), and
// truncation keeps the newest version with ts <= watermark — the *boundary*
// — plus everything newer. An active reader's S is >= the watermark, its
// walk stops at or before the boundary, and it only dereferences `next` of
// versions it skipped (ts > S), none of which is ever freed or re-linked;
// hence walks need no locks and no hazard pointers.
#ifndef SEMCC_OBJECT_VERSIONED_STORE_H_
#define SEMCC_OBJECT_VERSIONED_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "object/object_store.h"
#include "object/value.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/metrics.h"

namespace semcc {

/// \brief One version-installation event: the objects of one commit group
/// published at one timestamp. Collected (when enabled) for the snapshot
/// serializability checker and the MVCC tests.
struct VersionInstall {
  uint64_t ts = 0;
  std::vector<uint64_t> roots;  ///< root txn ids of the group
  std::vector<Oid> oids;        ///< distinct objects versioned at `ts`
};

/// \brief Point-in-time snapshot of MVCC statistics (plain data).
struct VersionStats {
  uint64_t snapshots = 0;          ///< snapshot transactions begun
  uint64_t snapshot_reads = 0;     ///< reads served from a version chain
  uint64_t live_reads = 0;         ///< snapshot reads of never-written objects
  uint64_t versions_installed = 0; ///< version nodes appended
  uint64_t versions_reclaimed = 0; ///< version nodes freed by GC
  uint64_t install_groups = 0;     ///< commit groups published
  uint64_t deferred_installs = 0;  ///< txn ends parked behind active writers
  uint64_t commit_ts = 0;          ///< current commit clock
  uint64_t watermark = 0;          ///< oldest snapshot bound at snapshot time
  metrics::HistogramSummary chain_length;  ///< chain length after install

  std::string ToString() const;
  std::string ToJson() const;
};

/// \brief Per-OID version chains + commit clock + watermark GC.
///
/// Thread safety: BeginWrite/OnTxnEnd/BeginSnapshot/EndSnapshot/Sweep
/// serialize on one mutex (they are rare: once per written object per
/// transaction, once per transaction end, once per snapshot). Reads
/// (ReadAtomic/ReadSet*) are lock-free on the chain walk; they take the
/// chains index's shared latch only to resolve Oid -> chain.
class VersionedObjectStore {
 public:
  explicit VersionedObjectStore(ObjectStore* store);
  ~VersionedObjectStore();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(VersionedObjectStore);

  // --- writer side ---------------------------------------------------------

  /// First write of a transaction to `oid` (TxnCtx calls this once per
  /// (txn, oid), BEFORE the physical write). Captures the ts=0 base version
  /// if the object was never written and counts the active writer.
  void BeginWrite(Oid oid, bool is_set);

  /// The transaction finished (committed, or abort compensation completed).
  /// Decrements the write set's writer counts and installs every pending
  /// commit group that became quiescent, reading the merged live values from
  /// the object store. `write_set` must be exactly the oids passed to
  /// BeginWrite by this transaction.
  void OnTxnEnd(uint64_t root_id, const std::set<Oid>& write_set);

  // --- reader side ---------------------------------------------------------

  /// Register a snapshot; returns its timestamp S (the current commit
  /// clock — every group with ts <= S is fully published). The caller MUST
  /// pair this with EndSnapshot(S) or the watermark never advances past S.
  uint64_t BeginSnapshot();
  void EndSnapshot(uint64_t snapshot_ts);

  /// Value of atomic object `oid` as of snapshot S. `observed_ts` (may be
  /// null) receives the version timestamp served (0 = base / live-fallback
  /// pre-first-write state).
  Result<Value> ReadAtomic(Oid oid, uint64_t snapshot_ts,
                           uint64_t* observed_ts);

  /// Set membership as of snapshot S (same shapes as ObjectStore::Set*).
  Result<Oid> ReadSetSelect(Oid set, const Value& key, uint64_t snapshot_ts,
                            uint64_t* observed_ts);
  Result<std::vector<std::pair<Value, Oid>>> ReadSetScan(
      Oid set, uint64_t snapshot_ts, uint64_t* observed_ts);
  Result<size_t> ReadSetSize(Oid set, uint64_t snapshot_ts,
                             uint64_t* observed_ts);

  // --- maintenance / introspection -----------------------------------------

  /// Quiesce sweep: truncate every chain to the current watermark (inline
  /// truncation only touches chains being installed to). Returns the number
  /// of version nodes reclaimed.
  uint64_t SweepVersions();

  /// Debug invariant check (call at a quiescent point, after SweepVersions):
  /// every chain is strictly descending in ts, non-empty chains end in a
  /// reachable boundary, and at most ONE version per chain is at or below
  /// the current watermark — the hard chain-length bound:
  /// len(chain) <= 1 + #installs in (watermark, commit_ts].
  Status CheckInvariants() const;

  VersionStats stats() const;
  uint64_t commit_ts() const;

  /// Record every install (ts, roots, oids) for the serializability checker;
  /// off by default (perf runs must not accumulate).
  void SetInstallLogEnabled(bool enabled);
  std::vector<VersionInstall> InstallLog() const;

 private:
  struct Version {
    uint64_t ts = 0;
    bool is_set = false;
    Value value;                                   // atoms
    std::map<Value, Oid> members;                  // sets
    std::atomic<Version*> next{nullptr};           // older
  };

  struct Chain {
    std::atomic<Version*> head{nullptr};  // newest; never null once published
    bool is_set = false;                  // immutable after creation
  };

  struct PendingTxn {
    uint64_t root_id = 0;
    std::vector<Oid> oids;
  };

  /// Counter indices (striped by thread).
  enum Counter : size_t {
    kCtrSnapshots = 0,
    kCtrSnapshotReads,
    kCtrLiveReads,
    kCtrCount,
  };

  /// Oid -> chain, or null if the object was never transactionally written.
  Chain* FindChain(Oid oid) const SEMCC_EXCLUDES(chains_mu_);
  /// Newest version with ts <= S (never null: chains end in the base or the
  /// GC boundary, both of which are <= any registered S).
  static const Version* VisibleVersion(const Chain* chain, uint64_t s);

  uint64_t Watermark() const SEMCC_REQUIRES(mu_);
  /// Append one version to `chain` and truncate past the watermark.
  /// Returns nodes freed.
  uint64_t InstallVersion(Chain* chain, std::unique_ptr<Version> v,
                          uint64_t watermark) SEMCC_REQUIRES(mu_);
  /// Publish every pending component whose objects are writer-quiescent.
  void ResolvePending() SEMCC_REQUIRES(mu_);
  uint64_t TruncateChain(Chain* chain, uint64_t watermark)
      SEMCC_REQUIRES(mu_);

  ObjectStore* const store_;

  mutable Mutex mu_;
  uint64_t commit_ts_ SEMCC_GUARDED_BY(mu_) = 0;
  std::map<Oid, uint32_t> active_writers_ SEMCC_GUARDED_BY(mu_);
  std::vector<PendingTxn> pending_ SEMCC_GUARDED_BY(mu_);
  std::multiset<uint64_t> snapshots_ SEMCC_GUARDED_BY(mu_);
  bool install_log_enabled_ SEMCC_GUARDED_BY(mu_) = false;
  std::vector<VersionInstall> install_log_ SEMCC_GUARDED_BY(mu_);
  // Monotonic tallies read at quiesce (guarded: written under mu_ only).
  uint64_t versions_installed_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t versions_reclaimed_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t install_groups_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t deferred_installs_ SEMCC_GUARDED_BY(mu_) = 0;

  /// Oid -> chain index. Readers take it shared to resolve the pointer and
  /// then walk lock-free; BeginWrite takes it exclusive to publish a new
  /// chain (chain objects are never deleted before the store itself).
  mutable SharedMutex chains_mu_;
  std::vector<std::unique_ptr<Chain>> chains_ SEMCC_GUARDED_BY(chains_mu_);

  metrics::CounterBank counters_;
  metrics::AtomicHistogram chain_length_;
};

}  // namespace semcc

#endif  // SEMCC_OBJECT_VERSIONED_STORE_H_
