#include "object/value.h"

#include <cstdio>
#include <cstring>

namespace semcc {

const char* ObjectKindName(ObjectKind kind) {
  switch (kind) {
    case ObjectKind::kAtomic:
      return "atomic";
    case ObjectKind::kTuple:
      return "tuple";
    case ObjectKind::kSet:
      return "set";
  }
  return "?";
}

bool Value::operator<(const Value& other) const {
  if (v_.index() != other.v_.index()) return v_.index() < other.v_.index();
  return v_ < other.v_;
}

namespace {
template <typename T>
void AppendRaw(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadRaw(std::string_view* in, T* v) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(v, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}
}  // namespace

std::string Value::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(type()));
  switch (type()) {
    case Type::kNull:
      break;
    case Type::kBool:
      out.push_back(AsBool() ? 1 : 0);
      break;
    case Type::kInt:
      AppendRaw(&out, AsInt());
      break;
    case Type::kDouble:
      AppendRaw(&out, AsDouble());
      break;
    case Type::kString: {
      const std::string& s = AsString();
      AppendRaw(&out, static_cast<uint32_t>(s.size()));
      out.append(s);
      break;
    }
    case Type::kRef:
      AppendRaw(&out, AsRef());
      break;
  }
  return out;
}

Result<Value> Value::Deserialize(std::string_view bytes) {
  if (bytes.empty()) return Status::Corruption("empty value encoding");
  const Type t = static_cast<Type>(bytes.front());
  bytes.remove_prefix(1);
  switch (t) {
    case Type::kNull:
      return Value();
    case Type::kBool: {
      if (bytes.empty()) return Status::Corruption("truncated bool");
      return Value(bytes.front() != 0);
    }
    case Type::kInt: {
      int64_t v;
      if (!ReadRaw(&bytes, &v)) return Status::Corruption("truncated int");
      return Value(v);
    }
    case Type::kDouble: {
      double v;
      if (!ReadRaw(&bytes, &v)) return Status::Corruption("truncated double");
      return Value(v);
    }
    case Type::kString: {
      uint32_t len;
      if (!ReadRaw(&bytes, &len) || bytes.size() < len) {
        return Status::Corruption("truncated string");
      }
      return Value(std::string(bytes.substr(0, len)));
    }
    case Type::kRef: {
      Oid oid;
      if (!ReadRaw(&bytes, &oid)) return Status::Corruption("truncated ref");
      return Value::Ref(oid);
    }
  }
  return Status::Corruption("unknown value tag");
}

std::string Value::ToString() const {
  char buf[64];
  switch (type()) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return AsBool() ? "true" : "false";
    case Type::kInt:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(AsInt()));
      return buf;
    case Type::kDouble:
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    case Type::kString:
      return "\"" + AsString() + "\"";
    case Type::kRef:
      std::snprintf(buf, sizeof(buf), "@%llu",
                    static_cast<unsigned long long>(AsRef()));
      return buf;
  }
  return "?";
}

std::string ArgsToString(const Args& args) {
  std::string out = "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace semcc
