#include "object/object_store.h"

#include <cstring>

#include "util/logging.h"

namespace semcc {

ObjectStore::ObjectStore(Schema* schema, RecordManager* records)
    : schema_(schema), records_(records) {
  // Oid 0 = the database root object (no storage record needed).
  auto root = std::make_unique<ObjectMeta>();
  root->oid = kDatabaseOid;
  root->type = Schema::kDatabaseTypeId;
  root->kind = ObjectKind::kTuple;
  objects_.push_back(std::move(root));
}

Result<ObjectStore::ObjectMeta*> ObjectStore::Find(Oid oid) const {
  ReaderMutexLock guard(meta_mu_);
  if (oid >= objects_.size()) return Status::NotFound("unknown oid");
  ObjectMeta* meta = objects_[oid].get();
  if (meta->destroyed) return Status::NotFound("object destroyed");
  return meta;
}

Result<ObjectStore::ObjectMeta*> ObjectStore::FindOfKind(
    Oid oid, ObjectKind kind) const {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, Find(oid));
  if (meta->kind != kind) {
    return Status::InvalidArgument(std::string("object is not ") +
                                   ObjectKindName(kind));
  }
  return meta;
}

Result<Oid> ObjectStore::CreateAtomic(TypeId type, const Value& initial) {
  SEMCC_ASSIGN_OR_RETURN(Rid rid, records_->Insert(initial.Serialize()));
  WriterMutexLock guard(meta_mu_);
  auto meta = std::make_unique<ObjectMeta>();
  meta->oid = objects_.size();
  meta->type = type;
  meta->kind = ObjectKind::kAtomic;
  meta->rid = rid;
  objects_.push_back(std::move(meta));
  const Oid oid = objects_.back()->oid;
  if (listener_ != nullptr) listener_->OnCreateAtomic(oid, type, initial);
  return oid;
}

Result<Oid> ObjectStore::CreateTuple(
    TypeId type, std::vector<std::pair<std::string, Oid>> components) {
  SEMCC_ASSIGN_OR_RETURN(TypeDescriptor desc, schema_->Get(type));
  if (desc.kind != ObjectKind::kTuple) {
    return Status::InvalidArgument("type is not a tuple type: " + desc.name);
  }
  if (desc.components.size() != components.size()) {
    return Status::InvalidArgument("component count mismatch for " + desc.name);
  }
  // Serialize the (immutable) structure: component oids in type order.
  std::string record;
  for (const ComponentDef& def : desc.components) {
    const std::pair<std::string, Oid>* found = nullptr;
    for (const auto& given : components) {
      if (given.first == def.name) {
        found = &given;
        break;
      }
    }
    if (found == nullptr) {
      return Status::InvalidArgument("missing component " + def.name);
    }
    record.append(reinterpret_cast<const char*>(&found->second), sizeof(Oid));
  }
  SEMCC_ASSIGN_OR_RETURN(Rid rid, records_->Insert(record));
  WriterMutexLock guard(meta_mu_);
  auto meta = std::make_unique<ObjectMeta>();
  meta->oid = objects_.size();
  meta->type = type;
  meta->kind = ObjectKind::kTuple;
  meta->rid = rid;
  meta->components = std::move(components);
  objects_.push_back(std::move(meta));
  const Oid oid = objects_.back()->oid;
  if (listener_ != nullptr) {
    listener_->OnCreateTuple(oid, type, objects_.back()->components);
  }
  return oid;
}

Result<Oid> ObjectStore::CreateSet(TypeId type) {
  SEMCC_ASSIGN_OR_RETURN(TypeDescriptor desc, schema_->Get(type));
  if (desc.kind != ObjectKind::kSet) {
    return Status::InvalidArgument("type is not a set type: " + desc.name);
  }
  uint64_t count = 0;
  std::string stub(reinterpret_cast<const char*>(&count), sizeof(count));
  SEMCC_ASSIGN_OR_RETURN(Rid rid, records_->Insert(stub));
  WriterMutexLock guard(meta_mu_);
  auto meta = std::make_unique<ObjectMeta>();
  meta->oid = objects_.size();
  meta->type = type;
  meta->kind = ObjectKind::kSet;
  meta->rid = rid;
  objects_.push_back(std::move(meta));
  const Oid oid = objects_.back()->oid;
  if (listener_ != nullptr) listener_->OnCreateSet(oid, type);
  return oid;
}

Status ObjectStore::Destroy(Oid oid) {
  // Writer meta_mu_ across delete + mark + log: the checkpoint dump holds
  // the reader lock for its whole scan, so a destroy can never interleave
  // with a dump (the dump would read the deleted record), and the destroy's
  // log position matches its apply position.
  WriterMutexLock guard(meta_mu_);
  if (oid >= objects_.size()) return Status::NotFound("unknown oid");
  ObjectMeta* meta = objects_[oid].get();
  if (meta->destroyed) return Status::NotFound("object destroyed");
  if (meta->rid.valid()) {
    SEMCC_RETURN_NOT_OK(records_->Delete(meta->rid));
  }
  meta->destroyed = true;
  if (listener_ != nullptr) listener_->OnDestroy(oid);
  return Status::OK();
}

Result<Value> ObjectStore::Get(Oid oid) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(oid, ObjectKind::kAtomic));
  SEMCC_ASSIGN_OR_RETURN(std::string bytes, records_->Read(meta->rid));
  return Value::Deserialize(bytes);
}

Status ObjectStore::Put(Oid oid, const Value& value) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(oid, ObjectKind::kAtomic));
  // Per-object apply+log atomicity (set_mu doubles as the object latch for
  // atoms): the checkpoint dump reads the record and logs its restore under
  // the same lock, so per object the log order always equals the apply
  // order — the property the in-checkpoint-region replay tolerance relies
  // on.
  MutexLock obj(meta->set_mu);
  SEMCC_RETURN_NOT_OK(records_->Update(meta->rid, value.Serialize()));
  if (listener_ != nullptr) listener_->OnPut(oid, value);
  return Status::OK();
}

Result<Oid> ObjectStore::Component(Oid tuple, const std::string& name) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(tuple, ObjectKind::kTuple));
  for (const auto& [cname, coid] : meta->components) {
    if (cname == name) return coid;
  }
  return Status::NotFound("no component " + name + " in " +
                          schema_->TypeName(meta->type));
}

Result<std::vector<std::pair<std::string, Oid>>> ObjectStore::Components(
    Oid tuple) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(tuple, ObjectKind::kTuple));
  return meta->components;
}

Status ObjectStore::RewriteSetStub(ObjectMeta* meta) {
  const uint64_t count = meta->members.size();
  std::string stub(reinterpret_cast<const char*>(&count), sizeof(count));
  return records_->Update(meta->rid, stub);
}

Status ObjectStore::SetInsert(Oid set, const Value& key, Oid member) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(set, ObjectKind::kSet));
  MutexLock guard(meta->set_mu);
  if (meta->members.count(key) > 0) {
    return Status::AlreadyExists("duplicate key " + key.ToString());
  }
  meta->members[key] = member;
  SEMCC_RETURN_NOT_OK(RewriteSetStub(meta));
  if (listener_ != nullptr) listener_->OnSetInsert(set, key, member);
  return Status::OK();
}

Status ObjectStore::SetRemove(Oid set, const Value& key) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(set, ObjectKind::kSet));
  MutexLock guard(meta->set_mu);
  auto it = meta->members.find(key);
  if (it == meta->members.end()) {
    return Status::NotFound("no member with key " + key.ToString());
  }
  const Oid member = it->second;
  meta->members.erase(it);
  SEMCC_RETURN_NOT_OK(RewriteSetStub(meta));
  if (listener_ != nullptr) listener_->OnSetRemove(set, key, member);
  return Status::OK();
}

Result<Oid> ObjectStore::SetSelect(Oid set, const Value& key) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(set, ObjectKind::kSet));
  MutexLock guard(meta->set_mu);
  auto it = meta->members.find(key);
  if (it == meta->members.end()) {
    return Status::NotFound("no member with key " + key.ToString());
  }
  return it->second;
}

Result<std::vector<std::pair<Value, Oid>>> ObjectStore::SetScan(Oid set) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(set, ObjectKind::kSet));
  MutexLock guard(meta->set_mu);
  std::vector<std::pair<Value, Oid>> out;
  out.reserve(meta->members.size());
  for (const auto& [k, v] : meta->members) out.emplace_back(k, v);
  return out;
}

Result<size_t> ObjectStore::SetSize(Oid set) {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, FindOfKind(set, ObjectKind::kSet));
  MutexLock guard(meta->set_mu);
  return meta->members.size();
}

Status ObjectStore::EmplaceAt(Oid oid, std::unique_ptr<ObjectMeta> meta) {
  if (oid < objects_.size() && !objects_[oid]->destroyed) {
    return Status::AlreadyExists("oid already live: " + std::to_string(oid));
  }
  while (objects_.size() <= oid) {
    auto pad = std::make_unique<ObjectMeta>();
    pad->oid = objects_.size();
    pad->destroyed = true;
    objects_.push_back(std::move(pad));
  }
  objects_[oid] = std::move(meta);
  return Status::OK();
}

Status ObjectStore::RestoreAtomic(Oid oid, TypeId type, const Value& initial) {
  SEMCC_ASSIGN_OR_RETURN(Rid rid, records_->Insert(initial.Serialize()));
  {
    WriterMutexLock guard(meta_mu_);
    auto meta = std::make_unique<ObjectMeta>();
    meta->oid = oid;
    meta->type = type;
    meta->kind = ObjectKind::kAtomic;
    meta->rid = rid;
    SEMCC_RETURN_NOT_OK(EmplaceAt(oid, std::move(meta)));
  }
  if (listener_ != nullptr) listener_->OnCreateAtomic(oid, type, initial);
  return Status::OK();
}

Status ObjectStore::RestoreTuple(
    Oid oid, TypeId type, std::vector<std::pair<std::string, Oid>> components) {
  std::string record;
  for (const auto& [name, coid] : components) {
    (void)name;
    record.append(reinterpret_cast<const char*>(&coid), sizeof(Oid));
  }
  SEMCC_ASSIGN_OR_RETURN(Rid rid, records_->Insert(record));
  {
    WriterMutexLock guard(meta_mu_);
    auto meta = std::make_unique<ObjectMeta>();
    meta->oid = oid;
    meta->type = type;
    meta->kind = ObjectKind::kTuple;
    meta->rid = rid;
    meta->components = std::move(components);
    SEMCC_RETURN_NOT_OK(EmplaceAt(oid, std::move(meta)));
  }
  if (listener_ != nullptr) {
    ReaderMutexLock guard(meta_mu_);
    listener_->OnCreateTuple(oid, type, objects_[oid]->components);
  }
  return Status::OK();
}

Status ObjectStore::RestoreSet(Oid oid, TypeId type) {
  uint64_t count = 0;
  std::string stub(reinterpret_cast<const char*>(&count), sizeof(count));
  SEMCC_ASSIGN_OR_RETURN(Rid rid, records_->Insert(stub));
  {
    WriterMutexLock guard(meta_mu_);
    auto meta = std::make_unique<ObjectMeta>();
    meta->oid = oid;
    meta->type = type;
    meta->kind = ObjectKind::kSet;
    meta->rid = rid;
    SEMCC_RETURN_NOT_OK(EmplaceAt(oid, std::move(meta)));
  }
  if (listener_ != nullptr) listener_->OnCreateSet(oid, type);
  return Status::OK();
}

Status ObjectStore::DumpForCheckpoint() {
  if (listener_ == nullptr) return Status::OK();
  // Reader meta_mu_ for the whole scan: value writes and set mutations on
  // existing objects proceed (they hold only the per-object set_mu), but
  // creates and destroys — structure changes — wait for the dump. That is
  // the "fuzzy" granularity: per object, never globally consistent.
  ReaderMutexLock guard(meta_mu_);
  for (Oid oid = 1; oid < objects_.size(); ++oid) {
    ObjectMeta* meta = objects_[oid].get();
    if (meta->destroyed) continue;
    switch (meta->kind) {
      case ObjectKind::kAtomic: {
        // Read + log under the object latch, mirroring Put: the restore
        // record lands in the log at a position consistent with every
        // concurrent write to this object.
        MutexLock obj(meta->set_mu);
        SEMCC_ASSIGN_OR_RETURN(std::string bytes, records_->Read(meta->rid));
        SEMCC_ASSIGN_OR_RETURN(Value value, Value::Deserialize(bytes));
        listener_->OnCreateAtomic(oid, meta->type, value);
        break;
      }
      case ObjectKind::kTuple:
        // Structure is immutable after creation; no latch needed.
        listener_->OnCreateTuple(oid, meta->type, meta->components);
        break;
      case ObjectKind::kSet: {
        MutexLock obj(meta->set_mu);
        listener_->OnCreateSet(oid, meta->type);
        for (const auto& [key, member] : meta->members) {
          listener_->OnSetInsert(oid, key, member);
        }
        break;
      }
    }
  }
  // Destroyed objects are skipped (EmplaceAt pads the gaps at replay), but
  // a destroyed *last* oid would silently shrink the replayed oid space and
  // let a post-restart create reuse its oid while retained log records
  // still name it. Pin the end with a placeholder create + destroy.
  const Oid last = objects_.size() - 1;
  if (last >= 1 && objects_[last]->destroyed) {
    listener_->OnCreateAtomic(last, objects_[last]->type, Value());
    listener_->OnDestroy(last);
  }
  return Status::OK();
}

Result<ObjectKind> ObjectStore::KindOf(Oid oid) const {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, Find(oid));
  return meta->kind;
}

Result<TypeId> ObjectStore::TypeOf(Oid oid) const {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, Find(oid));
  return meta->type;
}

Result<Rid> ObjectStore::RidOf(Oid oid) const {
  SEMCC_ASSIGN_OR_RETURN(ObjectMeta * meta, Find(oid));
  if (!meta->rid.valid()) {
    return Status::NotFound("object has no storage record (database root?)");
  }
  return meta->rid;
}

Result<PageId> ObjectStore::PageOf(Oid oid) const {
  SEMCC_ASSIGN_OR_RETURN(Rid rid, RidOf(oid));
  return rid.page_id;
}

uint64_t ObjectStore::num_objects() const {
  ReaderMutexLock guard(meta_mu_);
  return objects_.size();
}

std::string ObjectStore::DebugString(Oid oid) const {
  auto meta_r = Find(oid);
  if (!meta_r.ok()) return "<" + meta_r.status().ToString() + ">";
  ObjectMeta* meta = meta_r.ValueOrDie();
  std::string out = "@" + std::to_string(oid) + ":" +
                    schema_->TypeName(meta->type) + "(" +
                    ObjectKindName(meta->kind) + ")";
  return out;
}

}  // namespace semcc
