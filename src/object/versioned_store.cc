#include "object/versioned_store.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace semcc {

namespace {
// Thread-striping width for the read-side counters (reads are the hot path;
// the mu_-serialized paths could share one stripe but striping costs nothing).
constexpr size_t kCounterStripes = 16;
}  // namespace

VersionedObjectStore::VersionedObjectStore(ObjectStore* store)
    : store_(store), counters_(kCounterStripes, kCtrCount) {}

VersionedObjectStore::~VersionedObjectStore() {
  WriterMutexLock chains_lock(chains_mu_);
  for (auto& chain : chains_) {
    if (chain == nullptr) continue;
    Version* v = chain->head.load(std::memory_order_acquire);
    while (v != nullptr) {
      Version* next = v->next.load(std::memory_order_acquire);
      delete v;
      v = next;
    }
  }
}

void VersionedObjectStore::BeginWrite(Oid oid, bool is_set) {
  MutexLock lock(mu_);
  ++active_writers_[oid];
  {
    ReaderMutexLock chains_lock(chains_mu_);
    if (oid < chains_.size() && chains_[oid] != nullptr) return;
  }
  // First transactional write to this object ever: capture the ts=0 base
  // version. The live value is quiescent here — the chain is created before
  // any counted writer performs its physical write — so the base is the
  // object's initial committed state. Publishing the chain BEFORE this
  // transaction's physical write is what makes the readers' live-store
  // fallback revalidation sound (see the header contract).
  auto base = std::make_unique<Version>();
  base->ts = 0;
  base->is_set = is_set;
  if (is_set) {
    auto scan = store_->SetScan(oid);
    if (scan.ok()) {
      for (auto& [key, member] : *scan) {
        base->members.emplace(key, member);
      }
    }
  } else {
    auto get = store_->Get(oid);
    if (get.ok()) base->value = std::move(get).ValueUnsafe();
  }
  auto chain = std::make_unique<Chain>();
  chain->is_set = is_set;
  chain->head.store(base.release(), std::memory_order_release);
  WriterMutexLock chains_lock(chains_mu_);
  if (oid >= chains_.size()) chains_.resize(oid + 1);
  SEMCC_DCHECK(chains_[oid] == nullptr);
  chains_[oid] = std::move(chain);
}

void VersionedObjectStore::OnTxnEnd(uint64_t root_id,
                                    const std::set<Oid>& write_set) {
  if (write_set.empty()) return;
  MutexLock lock(mu_);
  for (Oid oid : write_set) {
    auto it = active_writers_.find(oid);
    SEMCC_DCHECK(it != active_writers_.end() && it->second > 0);
    if (it != active_writers_.end() && --it->second == 0) {
      active_writers_.erase(it);
    }
  }
  pending_.push_back(
      PendingTxn{root_id, std::vector<Oid>(write_set.begin(), write_set.end())});
  ResolvePending();
  for (const PendingTxn& p : pending_) {
    if (p.root_id == root_id) {
      ++deferred_installs_;
      break;
    }
  }
}

void VersionedObjectStore::ResolvePending() {
  if (pending_.empty()) return;
  // Union-find over pending transactions: two are connected when their write
  // sets overlap. (Connectivity through a still-active writer is handled
  // implicitly — its objects carry nonzero counts, blocking the component,
  // and it joins the component when its own OnTxnEnd adds it to pending_.)
  const size_t n = pending_.size();
  std::vector<size_t> parent(n);
  for (size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&parent](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::map<Oid, size_t> first_owner;
  for (size_t i = 0; i < n; ++i) {
    for (Oid oid : pending_[i].oids) {
      auto [it, inserted] = first_owner.emplace(oid, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  // A component installs when none of its objects has an active writer.
  std::map<size_t, bool> quiescent;  // root -> installable
  for (size_t i = 0; i < n; ++i) {
    size_t root = find(i);
    auto [it, inserted] = quiescent.emplace(root, true);
    if (!it->second) continue;
    for (Oid oid : pending_[i].oids) {
      if (active_writers_.count(oid) > 0) {
        it->second = false;
        break;
      }
    }
  }
  std::vector<PendingTxn> still_pending;
  std::map<size_t, uint64_t> group_ts;  // component root -> install ts
  for (size_t i = 0; i < n; ++i) {
    if (!quiescent[find(i)]) still_pending.push_back(std::move(pending_[i]));
  }
  const uint64_t watermark = Watermark();
  for (auto& [root, ok] : quiescent) {
    if (ok) group_ts[root] = ++commit_ts_;
  }
  // Install each quiescent component at its single timestamp, reading the
  // merged live values: every transaction that wrote these objects has
  // completed, so the bytes are a serial-equivalent committed state.
  for (auto& [comp, ts] : group_ts) {
    VersionInstall record;
    record.ts = ts;
    std::set<Oid> comp_oids;
    for (size_t i = 0; i < n; ++i) {
      if (find(i) != comp) continue;
      record.roots.push_back(pending_[i].root_id);
      comp_oids.insert(pending_[i].oids.begin(), pending_[i].oids.end());
    }
    for (Oid oid : comp_oids) {
      Chain* chain = FindChain(oid);
      SEMCC_CHECK(chain != nullptr);  // BeginWrite created it
      auto v = std::make_unique<Version>();
      v->ts = ts;
      v->is_set = chain->is_set;
      if (chain->is_set) {
        auto scan = store_->SetScan(oid);
        if (scan.ok()) {
          for (auto& [key, member] : *scan) {
            v->members.emplace(key, member);
          }
        }
      } else {
        auto get = store_->Get(oid);
        if (get.ok()) v->value = std::move(get).ValueUnsafe();
      }
      versions_reclaimed_ += InstallVersion(chain, std::move(v), watermark);
      ++versions_installed_;
    }
    record.oids.assign(comp_oids.begin(), comp_oids.end());
    ++install_groups_;
    if (install_log_enabled_) install_log_.push_back(std::move(record));
  }
  pending_ = std::move(still_pending);
}

uint64_t VersionedObjectStore::InstallVersion(Chain* chain,
                                              std::unique_ptr<Version> v,
                                              uint64_t watermark) {
  Version* head = chain->head.load(std::memory_order_acquire);
  v->next.store(head, std::memory_order_release);
  chain->head.store(v.release(), std::memory_order_release);
  uint64_t freed = TruncateChain(chain, watermark);
  size_t len = 0;
  for (const Version* p = chain->head.load(std::memory_order_acquire);
       p != nullptr; p = p->next.load(std::memory_order_acquire)) {
    ++len;
  }
  chain_length_.Add(len);
  return freed;
}

uint64_t VersionedObjectStore::TruncateChain(Chain* chain,
                                             uint64_t watermark) {
  // Boundary = newest version with ts <= watermark. Every version older than
  // the boundary is invisible to all current and future snapshots (their S
  // >= watermark resolves to the boundary or newer), and no reader ever
  // loads `next` of a version with ts <= its S, so the cut and the frees
  // need no reader synchronization.
  Version* boundary = chain->head.load(std::memory_order_acquire);
  while (boundary != nullptr && boundary->ts > watermark) {
    boundary = boundary->next.load(std::memory_order_acquire);
  }
  if (boundary == nullptr) return 0;
  Version* victim = boundary->next.load(std::memory_order_acquire);
  if (victim == nullptr) return 0;
  boundary->next.store(nullptr, std::memory_order_release);
  uint64_t freed = 0;
  while (victim != nullptr) {
    Version* next = victim->next.load(std::memory_order_acquire);
    delete victim;
    victim = next;
    ++freed;
  }
  return freed;
}

uint64_t VersionedObjectStore::Watermark() const {
  uint64_t w = commit_ts_;
  if (!snapshots_.empty()) w = std::min(w, *snapshots_.begin());
  return w;
}

uint64_t VersionedObjectStore::BeginSnapshot() {
  counters_.Inc(metrics::ThreadStripeSlot(), kCtrSnapshots);
  MutexLock lock(mu_);
  const uint64_t s = commit_ts_;
  snapshots_.insert(s);
  return s;
}

void VersionedObjectStore::EndSnapshot(uint64_t snapshot_ts) {
  MutexLock lock(mu_);
  auto it = snapshots_.find(snapshot_ts);
  SEMCC_DCHECK(it != snapshots_.end());
  if (it != snapshots_.end()) snapshots_.erase(it);
}

VersionedObjectStore::Chain* VersionedObjectStore::FindChain(Oid oid) const {
  ReaderMutexLock lock(chains_mu_);
  if (oid >= chains_.size()) return nullptr;
  return chains_[oid].get();
}

const VersionedObjectStore::Version* VersionedObjectStore::VisibleVersion(
    const Chain* chain, uint64_t s) {
  const Version* v = chain->head.load(std::memory_order_acquire);
  while (v != nullptr && v->ts > s) {
    v = v->next.load(std::memory_order_acquire);
  }
  // Non-null by construction: every chain bottoms out in the ts=0 base or
  // the GC boundary, both <= any registered snapshot.
  SEMCC_CHECK(v != nullptr);
  return v;
}

Result<Value> VersionedObjectStore::ReadAtomic(Oid oid, uint64_t snapshot_ts,
                                               uint64_t* observed_ts) {
  for (;;) {
    Chain* chain = FindChain(oid);
    if (chain != nullptr) {
      if (chain->is_set) {
        return Status::InvalidArgument("Get on non-atomic object");
      }
      const Version* v = VisibleVersion(chain, snapshot_ts);
      counters_.Inc(metrics::ThreadStripeSlot(), kCtrSnapshotReads);
      if (observed_ts != nullptr) *observed_ts = v->ts;
      return v->value;
    }
    // Never transactionally written: read the live store and revalidate that
    // no chain appeared meanwhile. If one did, a writer may have raced our
    // live read — retry through the chain (whose ts=0 base is pre-write).
    auto live = store_->Get(oid);
    if (!live.ok()) return live;
    if (FindChain(oid) == nullptr) {
      counters_.Inc(metrics::ThreadStripeSlot(), kCtrLiveReads);
      if (observed_ts != nullptr) *observed_ts = 0;
      return live;
    }
  }
}

Result<Oid> VersionedObjectStore::ReadSetSelect(Oid set, const Value& key,
                                                uint64_t snapshot_ts,
                                                uint64_t* observed_ts) {
  for (;;) {
    Chain* chain = FindChain(set);
    if (chain != nullptr) {
      if (!chain->is_set) {
        return Status::InvalidArgument("Select on non-set object");
      }
      const Version* v = VisibleVersion(chain, snapshot_ts);
      counters_.Inc(metrics::ThreadStripeSlot(), kCtrSnapshotReads);
      if (observed_ts != nullptr) *observed_ts = v->ts;
      auto it = v->members.find(key);
      if (it == v->members.end()) {
        return Status::NotFound("no member with key " + key.ToString());
      }
      return it->second;
    }
    auto live = store_->SetSelect(set, key);
    if (!live.ok() && !live.status().IsNotFound()) return live;
    if (FindChain(set) == nullptr) {
      counters_.Inc(metrics::ThreadStripeSlot(), kCtrLiveReads);
      if (observed_ts != nullptr) *observed_ts = 0;
      return live;
    }
  }
}

Result<std::vector<std::pair<Value, Oid>>> VersionedObjectStore::ReadSetScan(
    Oid set, uint64_t snapshot_ts, uint64_t* observed_ts) {
  for (;;) {
    Chain* chain = FindChain(set);
    if (chain != nullptr) {
      if (!chain->is_set) {
        return Status::InvalidArgument("Scan on non-set object");
      }
      const Version* v = VisibleVersion(chain, snapshot_ts);
      counters_.Inc(metrics::ThreadStripeSlot(), kCtrSnapshotReads);
      if (observed_ts != nullptr) *observed_ts = v->ts;
      std::vector<std::pair<Value, Oid>> out;
      out.reserve(v->members.size());
      for (const auto& [k, member] : v->members) out.emplace_back(k, member);
      return out;
    }
    auto live = store_->SetScan(set);
    if (!live.ok()) return live;
    if (FindChain(set) == nullptr) {
      counters_.Inc(metrics::ThreadStripeSlot(), kCtrLiveReads);
      if (observed_ts != nullptr) *observed_ts = 0;
      return live;
    }
  }
}

Result<size_t> VersionedObjectStore::ReadSetSize(Oid set, uint64_t snapshot_ts,
                                                 uint64_t* observed_ts) {
  for (;;) {
    Chain* chain = FindChain(set);
    if (chain != nullptr) {
      if (!chain->is_set) {
        return Status::InvalidArgument("Size on non-set object");
      }
      const Version* v = VisibleVersion(chain, snapshot_ts);
      counters_.Inc(metrics::ThreadStripeSlot(), kCtrSnapshotReads);
      if (observed_ts != nullptr) *observed_ts = v->ts;
      return v->members.size();
    }
    auto live = store_->SetSize(set);
    if (!live.ok()) return live;
    if (FindChain(set) == nullptr) {
      counters_.Inc(metrics::ThreadStripeSlot(), kCtrLiveReads);
      if (observed_ts != nullptr) *observed_ts = 0;
      return live;
    }
  }
}

uint64_t VersionedObjectStore::SweepVersions() {
  MutexLock lock(mu_);
  const uint64_t watermark = Watermark();
  uint64_t freed = 0;
  ReaderMutexLock chains_lock(chains_mu_);
  for (auto& chain : chains_) {
    if (chain != nullptr) freed += TruncateChain(chain.get(), watermark);
  }
  versions_reclaimed_ += freed;
  return freed;
}

Status VersionedObjectStore::CheckInvariants() const {
  MutexLock lock(mu_);
  const uint64_t watermark = Watermark();
  ReaderMutexLock chains_lock(chains_mu_);
  char buf[160];
  for (Oid oid = 0; oid < chains_.size(); ++oid) {
    const Chain* chain = chains_[oid].get();
    if (chain == nullptr) continue;
    const Version* v = chain->head.load(std::memory_order_acquire);
    if (v == nullptr) {
      std::snprintf(buf, sizeof(buf), "oid %llu: chain with null head",
                    static_cast<unsigned long long>(oid));
      return Status::Internal(buf);
    }
    uint64_t prev_ts = ~uint64_t{0};
    size_t stale = 0;
    for (; v != nullptr; v = v->next.load(std::memory_order_acquire)) {
      if (v->ts >= prev_ts) {
        std::snprintf(buf, sizeof(buf),
                      "oid %llu: version ts %llu not strictly below newer %llu",
                      static_cast<unsigned long long>(oid),
                      static_cast<unsigned long long>(v->ts),
                      static_cast<unsigned long long>(prev_ts));
        return Status::Internal(buf);
      }
      prev_ts = v->ts;
      if (v->ts <= watermark) ++stale;
      if (v->is_set != chain->is_set) {
        std::snprintf(buf, sizeof(buf), "oid %llu: version kind mismatch",
                      static_cast<unsigned long long>(oid));
        return Status::Internal(buf);
      }
    }
    // The hard GC bound (valid at quiescent points, after SweepVersions):
    // one boundary version at or below the watermark, nothing older.
    if (stale > 1) {
      std::snprintf(
          buf, sizeof(buf),
          "oid %llu: %llu versions at or below watermark %llu (bound is 1)",
          static_cast<unsigned long long>(oid),
          static_cast<unsigned long long>(stale),
          static_cast<unsigned long long>(watermark));
      return Status::Internal(buf);
    }
  }
  return Status::OK();
}

VersionStats VersionedObjectStore::stats() const {
  VersionStats s;
  s.snapshots = counters_.Sum(kCtrSnapshots);
  s.snapshot_reads = counters_.Sum(kCtrSnapshotReads);
  s.live_reads = counters_.Sum(kCtrLiveReads);
  s.chain_length = chain_length_.Snapshot();
  MutexLock lock(mu_);
  s.versions_installed = versions_installed_;
  s.versions_reclaimed = versions_reclaimed_;
  s.install_groups = install_groups_;
  s.deferred_installs = deferred_installs_;
  s.commit_ts = commit_ts_;
  s.watermark = Watermark();
  return s;
}

uint64_t VersionedObjectStore::commit_ts() const {
  MutexLock lock(mu_);
  return commit_ts_;
}

void VersionedObjectStore::SetInstallLogEnabled(bool enabled) {
  MutexLock lock(mu_);
  install_log_enabled_ = enabled;
  if (!enabled) install_log_.clear();
}

std::vector<VersionInstall> VersionedObjectStore::InstallLog() const {
  MutexLock lock(mu_);
  return install_log_;
}

std::string VersionStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "snapshots=%llu snapshot_reads=%llu installed=%llu "
                "reclaimed=%llu groups=%llu deferred=%llu ts=%llu "
                "chain_len_p99=%llu",
                static_cast<unsigned long long>(snapshots),
                static_cast<unsigned long long>(snapshot_reads),
                static_cast<unsigned long long>(versions_installed),
                static_cast<unsigned long long>(versions_reclaimed),
                static_cast<unsigned long long>(install_groups),
                static_cast<unsigned long long>(deferred_installs),
                static_cast<unsigned long long>(commit_ts),
                static_cast<unsigned long long>(chain_length.p99));
  return buf;
}

std::string VersionStats::ToJson() const {
  metrics::JsonWriter w;
  w.Field("snapshots", snapshots);
  w.Field("snapshot_reads", snapshot_reads);
  w.Field("live_reads", live_reads);
  w.Field("versions_installed", versions_installed);
  w.Field("versions_reclaimed", versions_reclaimed);
  w.Field("install_groups", install_groups);
  w.Field("deferred_installs", deferred_installs);
  w.Field("commit_ts", commit_ts);
  w.Field("watermark", watermark);
  w.Field("chain_len_p50", chain_length.p50);
  w.Field("chain_len_p99", chain_length.p99);
  w.Field("chain_len_max", chain_length.max);
  return w.Close();
}

}  // namespace semcc
