#include "object/schema.h"

namespace semcc {

Schema::Schema() {
  // Type 0: the database root (paper footnote 2 — transactions are actions
  // on the object "Database").
  TypeDescriptor db;
  db.id = kDatabaseTypeId;
  db.name = "Database";
  db.kind = ObjectKind::kTuple;
  db.encapsulated = false;
  types_.push_back(db);
  by_name_["Database"] = kDatabaseTypeId;
}

Result<TypeId> Schema::Define(TypeDescriptor desc) {
  MutexLock guard(mu_);
  if (by_name_.count(desc.name) > 0) {
    return Status::AlreadyExists("type already defined: " + desc.name);
  }
  desc.id = static_cast<TypeId>(types_.size());
  by_name_[desc.name] = desc.id;
  types_.push_back(std::move(desc));
  return types_.back().id;
}

Result<TypeId> Schema::DefineAtomicType(const std::string& name) {
  TypeDescriptor d;
  d.name = name;
  d.kind = ObjectKind::kAtomic;
  return Define(std::move(d));
}

Result<TypeId> Schema::DefineTupleType(const std::string& name,
                                       std::vector<ComponentDef> components,
                                       bool encapsulated) {
  TypeDescriptor d;
  d.name = name;
  d.kind = ObjectKind::kTuple;
  d.encapsulated = encapsulated;
  d.components = std::move(components);
  for (size_t i = 0; i < d.components.size(); ++i) {
    for (size_t j = i + 1; j < d.components.size(); ++j) {
      if (d.components[i].name == d.components[j].name) {
        return Status::InvalidArgument("duplicate component: " +
                                       d.components[i].name);
      }
    }
  }
  return Define(std::move(d));
}

Result<TypeId> Schema::DefineSetType(const std::string& name,
                                     TypeId member_type,
                                     const std::string& key_component) {
  TypeDescriptor d;
  d.name = name;
  d.kind = ObjectKind::kSet;
  d.member_type = member_type;
  d.key_component = key_component;
  return Define(std::move(d));
}

Result<TypeDescriptor> Schema::Get(TypeId id) const {
  MutexLock guard(mu_);
  if (id >= types_.size()) return Status::NotFound("unknown type id");
  return types_[id];
}

Result<TypeDescriptor> Schema::GetByName(const std::string& name) const {
  MutexLock guard(mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("unknown type: " + name);
  return types_[it->second];
}

std::string Schema::TypeName(TypeId id) const {
  MutexLock guard(mu_);
  return id < types_.size() ? types_[id].name : "?";
}

std::vector<TypeDescriptor> Schema::AllTypes() const {
  MutexLock guard(mu_);
  return types_;
}

}  // namespace semcc
