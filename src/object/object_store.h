// ObjectStore: the live object graph, mapped onto storage records.
//
// Every atomic object's value lives in exactly one storage record, so the
// conventional baselines can lock the record (RID) or its page. Tuple
// structure is immutable after creation and serialized to a record; set
// membership is kept in memory with a small stub record that is rewritten on
// every mutation (so record/page-level protocols observe set updates as
// writes; a real system would use overflow chains, which are orthogonal to
// the concurrency-control question — see DESIGN.md).
#ifndef SEMCC_OBJECT_OBJECT_STORE_H_
#define SEMCC_OBJECT_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "object/schema.h"
#include "object/value.h"
#include "storage/record_manager.h"
#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

/// \brief Observer of physical state changes, used by the write-ahead log.
///
/// Callbacks fire after the change succeeded, while the store still holds
/// the relevant internal lock, so the log order matches the apply order.
class StoreListener {
 public:
  virtual ~StoreListener() = default;
  virtual void OnCreateAtomic(Oid oid, TypeId type, const Value& initial) = 0;
  virtual void OnCreateTuple(
      Oid oid, TypeId type,
      const std::vector<std::pair<std::string, Oid>>& components) = 0;
  virtual void OnCreateSet(Oid oid, TypeId type) = 0;
  virtual void OnDestroy(Oid oid) = 0;
  virtual void OnPut(Oid oid, const Value& after) = 0;
  virtual void OnSetInsert(Oid set, const Value& key, Oid member) = 0;
  virtual void OnSetRemove(Oid set, const Value& key, Oid member) = 0;
};

/// \brief The object graph of one database instance.
///
/// Thread safety: all operations are physically thread-safe (latches only).
/// Transactional isolation is the lock manager's job, one layer up.
class ObjectStore {
 public:
  ObjectStore(Schema* schema, RecordManager* records);
  SEMCC_DISALLOW_COPY_AND_ASSIGN(ObjectStore);

  /// Attach/detach the physical-change observer (WAL). Not thread-safe with
  /// respect to concurrent mutations; set during wiring.
  void SetListener(StoreListener* listener) { listener_ = listener; }

  // --- creation ---------------------------------------------------------

  Result<Oid> CreateAtomic(TypeId type, const Value& initial);
  /// `components` must match the tuple type's component list by name.
  Result<Oid> CreateTuple(TypeId type,
                          std::vector<std::pair<std::string, Oid>> components);
  Result<Oid> CreateSet(TypeId type);

  /// Physically destroy an object (used by compensation of object-creating
  /// methods). Atomic/tuple/set records are tombstoned.
  Status Destroy(Oid oid);

  // --- log-replay restoration (recovery) ---------------------------------
  //
  // Recreate an object under its ORIGINAL oid. Oid slots between the current
  // end and `oid` are padded with destroyed placeholders; replaying a log in
  // LSN order therefore reproduces the exact oid space. Listener callbacks
  // still fire (the new database's log receives the compacted history).

  Status RestoreAtomic(Oid oid, TypeId type, const Value& initial);
  Status RestoreTuple(Oid oid, TypeId type,
                      std::vector<std::pair<std::string, Oid>> components);
  Status RestoreSet(Oid oid, TypeId type);

  /// Emit the live object graph to the listener as restore records — the
  /// body of an online fuzzy checkpoint. Holds the reader meta lock for the
  /// whole scan (creates/destroys wait; value and set writes proceed) and
  /// each object's own latch while reading + logging it, so per object the
  /// dumped state is consistent and its log position matches apply order.
  Status DumpForCheckpoint() SEMCC_EXCLUDES(meta_mu_);

  // --- atomic objects (generic methods Get / Put, paper §2.2) -----------

  Result<Value> Get(Oid oid);
  Status Put(Oid oid, const Value& value);

  // --- tuple objects (component selection t.c) --------------------------

  Result<Oid> Component(Oid tuple, const std::string& name);
  Result<std::vector<std::pair<std::string, Oid>>> Components(Oid tuple);

  // --- set objects (generic method Select, plus Insert/Remove) ----------

  Status SetInsert(Oid set, const Value& key, Oid member);
  Status SetRemove(Oid set, const Value& key);
  Result<Oid> SetSelect(Oid set, const Value& key);
  Result<std::vector<std::pair<Value, Oid>>> SetScan(Oid set);
  Result<size_t> SetSize(Oid set);

  // --- reflection --------------------------------------------------------

  Result<ObjectKind> KindOf(Oid oid) const;
  Result<TypeId> TypeOf(Oid oid) const;
  /// Storage record backing the object (atom value / tuple structure / set
  /// stub). Used by record- and page-granularity locking.
  Result<Rid> RidOf(Oid oid) const;
  Result<PageId> PageOf(Oid oid) const;

  uint64_t num_objects() const;
  std::string DebugString(Oid oid) const;

  Schema* schema() const { return schema_; }

 private:
  struct ObjectMeta {
    Oid oid = kInvalidOid;
    TypeId type = kInvalidTypeId;
    ObjectKind kind = ObjectKind::kAtomic;
    Rid rid;
    bool destroyed = false;
    // Tuple: immutable after creation.
    std::vector<std::pair<std::string, Oid>> components;
    // Per-object latch: guards `members` for sets, and serializes
    // apply+log (Put / checkpoint-dump read) for atoms so the log order
    // matches the apply order per object.
    mutable Mutex set_mu;
    std::map<Value, Oid> members SEMCC_GUARDED_BY(set_mu);
  };

  Result<ObjectMeta*> Find(Oid oid) const SEMCC_EXCLUDES(meta_mu_);
  Result<ObjectMeta*> FindOfKind(Oid oid, ObjectKind kind) const
      SEMCC_EXCLUDES(meta_mu_);
  Status RewriteSetStub(ObjectMeta* meta)
      SEMCC_REQUIRES(meta->set_mu);
  /// Place `meta` at index `oid` (padding as needed).
  Status EmplaceAt(Oid oid, std::unique_ptr<ObjectMeta> meta)
      SEMCC_REQUIRES(meta_mu_);

  Schema* const schema_;
  RecordManager* const records_;
  StoreListener* listener_ = nullptr;

  mutable SharedMutex meta_mu_;
  /// index = Oid. meta_mu_ guards the vector (growth/slot replacement); the
  /// pointed-to ObjectMeta records are stable once published and carry their
  /// own set_mu for the one mutable field.
  std::vector<std::unique_ptr<ObjectMeta>> objects_ SEMCC_GUARDED_BY(meta_mu_);
};

}  // namespace semcc

#endif  // SEMCC_OBJECT_OBJECT_STORE_H_
