// Object identifiers.
#ifndef SEMCC_OBJECT_OID_H_
#define SEMCC_OBJECT_OID_H_

#include <cstdint>
#include <functional>
#include <string>

namespace semcc {

/// \brief Surrogate object id, unique per ObjectStore.
///
/// Oid 0 is reserved for the database root object: the paper (footnote 2)
/// views top-level transactions as actions on the object "Database".
using Oid = uint64_t;

constexpr Oid kDatabaseOid = 0;
constexpr Oid kInvalidOid = UINT64_MAX;

/// \brief Object type id, assigned by the schema registry.
using TypeId = uint32_t;
constexpr TypeId kInvalidTypeId = UINT32_MAX;

/// \brief Structural kind of an object (the paper's generic types, §2.2).
enum class ObjectKind : uint8_t {
  kAtomic = 0,  ///< single value; generic methods Get/Put
  kTuple = 1,   ///< named components; component selection t.c
  kSet = 2,     ///< members with a primary key; generic method Select
};

const char* ObjectKindName(ObjectKind kind);

}  // namespace semcc

#endif  // SEMCC_OBJECT_OID_H_
