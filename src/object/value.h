// Tagged values held by atomic objects and passed as method parameters.
#ifndef SEMCC_OBJECT_VALUE_H_
#define SEMCC_OBJECT_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "object/oid.h"
#include "util/result.h"

namespace semcc {

/// \brief A dynamically typed value: null, bool, int64, double, string, or
/// an object reference.
class Value {
 public:
  enum class Type : uint8_t {
    kNull = 0,
    kBool = 1,
    kInt = 2,
    kDouble = 3,
    kString = 4,
    kRef = 5,
  };

  Value() : v_(std::monostate{}) {}
  Value(bool b) : v_(b) {}                      // NOLINT implicit
  Value(int64_t i) : v_(i) {}                   // NOLINT implicit
  Value(int i) : v_(static_cast<int64_t>(i)) {} // NOLINT implicit
  Value(double d) : v_(d) {}                    // NOLINT implicit
  Value(std::string s) : v_(std::move(s)) {}    // NOLINT implicit
  Value(const char* s) : v_(std::string(s)) {}  // NOLINT implicit

  static Value Ref(Oid oid) {
    Value v;
    v.v_ = RefBox{oid};
    return v;
  }

  Type type() const { return static_cast<Type>(v_.index()); }
  bool is_null() const { return type() == Type::kNull; }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  Oid AsRef() const { return std::get<RefBox>(v_).oid; }

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order over (type tag, payload); used by key indexes.
  bool operator<(const Value& other) const;

  /// Compact binary encoding (tag byte + payload).
  std::string Serialize() const;
  static Result<Value> Deserialize(std::string_view bytes);

  std::string ToString() const;

 private:
  struct RefBox {
    Oid oid;
    bool operator==(const RefBox& other) const = default;
    bool operator<(const RefBox& other) const { return oid < other.oid; }
  };
  std::variant<std::monostate, bool, int64_t, double, std::string, RefBox> v_;
};

/// Parameter list of a method invocation.
using Args = std::vector<Value>;

std::string ArgsToString(const Args& args);

}  // namespace semcc

#endif  // SEMCC_OBJECT_VALUE_H_
