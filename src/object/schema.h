// Structural schema: object types and their composition.
//
// The paper (§2) uses an object-structure graph model as a "lowest common
// denominator": encapsulated types (Item, Order) are tuples of atomic objects
// and sets of further objects. This registry records that structure; method
// semantics (bodies, inverses, compatibility) live in the core layer.
#ifndef SEMCC_OBJECT_SCHEMA_H_
#define SEMCC_OBJECT_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "object/oid.h"
#include "object/value.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/result.h"

namespace semcc {

/// \brief Definition of one tuple component.
struct ComponentDef {
  std::string name;
  TypeId type = kInvalidTypeId;
};

/// \brief A registered object type.
struct TypeDescriptor {
  TypeId id = kInvalidTypeId;
  std::string name;
  ObjectKind kind = ObjectKind::kAtomic;
  /// True for encapsulated ADTs (Item, Order): access is *supposed* to go
  /// through methods, though transactions may bypass (paper §4.1).
  bool encapsulated = false;
  /// Tuple types: ordered components.
  std::vector<ComponentDef> components;
  /// Set types: type of the members.
  TypeId member_type = kInvalidTypeId;
  /// Set types: name of the key component in the member type ("primary key
  /// defined among the atomic components of the set's member type", §2.2).
  std::string key_component;
};

/// \brief Thread-safe type registry.
class Schema {
 public:
  Schema();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(Schema);

  Result<TypeId> DefineAtomicType(const std::string& name);
  Result<TypeId> DefineTupleType(const std::string& name,
                                 std::vector<ComponentDef> components,
                                 bool encapsulated);
  Result<TypeId> DefineSetType(const std::string& name, TypeId member_type,
                               const std::string& key_component);

  Result<TypeDescriptor> Get(TypeId id) const;
  Result<TypeDescriptor> GetByName(const std::string& name) const;
  std::string TypeName(TypeId id) const;

  /// The pre-registered type of the database root object.
  TypeId database_type() const { return kDatabaseTypeId; }
  static constexpr TypeId kDatabaseTypeId = 0;

  std::vector<TypeDescriptor> AllTypes() const;

 private:
  Result<TypeId> Define(TypeDescriptor desc) SEMCC_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::vector<TypeDescriptor> types_ SEMCC_GUARDED_BY(mu_);
  std::map<std::string, TypeId> by_name_ SEMCC_GUARDED_BY(mu_);
};

}  // namespace semcc

#endif  // SEMCC_OBJECT_SCHEMA_H_
