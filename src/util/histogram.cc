#include "util/histogram.h"

#include <algorithm>
#include <cstdio>

namespace semcc {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value < 64) return static_cast<int>(value);
  // Exponential buckets: 16 per power of two above 64.
  int msb = 63 - __builtin_clzll(value);
  uint64_t base = 1ULL << msb;
  int sub = static_cast<int>(((value - base) * 16) >> msb);
  int bucket = 64 + (msb - 6) * 16 + sub;
  return std::min(bucket, kNumBuckets - 1);
}

uint64_t Histogram::BucketUpperBound(int bucket) {
  if (bucket < 64) return static_cast<uint64_t>(bucket);
  int rel = bucket - 64;
  int msb = 6 + rel / 16;
  int sub = rel % 16;
  uint64_t base = 1ULL << msb;
  return base + ((static_cast<uint64_t>(sub) + 1) << msb) / 16 - 1;
}

void Histogram::Add(uint64_t value) {
  MutexLock guard(mu_);
  buckets_[BucketFor(value)]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  count_++;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  // Snapshot `other` under its own lock, then fold the copy in under ours.
  // Locking the two mutexes one at a time (instead of together) keeps the
  // lock-order graph trivially acyclic and lets the thread-safety analysis
  // verify both scopes; Merge is not atomic with respect to concurrent Adds
  // on `other`, which no caller relies on (it is a post-run aggregation).
  std::vector<uint64_t> other_buckets;
  uint64_t other_count, other_sum, other_min, other_max;
  {
    MutexLock guard(other.mu_);
    other_buckets = other.buckets_;
    other_count = other.count_;
    other_sum = other.sum_;
    other_min = other.min_;
    other_max = other.max_;
  }
  MutexLock guard(mu_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other_buckets[i];
  if (other_count > 0) {
    if (count_ == 0 || other_min < min_) min_ = other_min;
    if (count_ == 0 || other_max > max_) max_ = other_max;
  }
  count_ += other_count;
  sum_ += other_sum;
}

void Histogram::Reset() {
  MutexLock guard(mu_);
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = min_ = max_ = 0;
}

uint64_t Histogram::count() const {
  MutexLock guard(mu_);
  return count_;
}

double Histogram::mean() const {
  MutexLock guard(mu_);
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::min() const {
  MutexLock guard(mu_);
  return min_;
}

uint64_t Histogram::max() const {
  MutexLock guard(mu_);
  return max_;
}

uint64_t Histogram::Percentile(double p) const {
  MutexLock guard(mu_);
  if (count_ == 0) return 0;
  uint64_t threshold =
      static_cast<uint64_t>(static_cast<double>(count_) * p / 100.0);
  if (threshold >= count_) threshold = count_ - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > threshold) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count()), mean(),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(95)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(max()));
  return buf;
}

}  // namespace semcc
