#include "util/random.h"

#include <cmath>

namespace semcc {

Random::Random(uint64_t seed) {
  // SplitMix64 to spread the seed over both words.
  auto splitmix = [](uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s0_ = 1;
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

bool Random::Bernoulli(double p) { return NextDouble() < p; }

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n == 0 ? 1 : n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  if (theta_ == 0.0) return rng_.Uniform(n_);
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace semcc
