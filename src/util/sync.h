// Synchronization helpers: semaphore, count-down latch, and a scripted
// schedule used by scenario tests to force the paper's exact interleavings.
//
// All three are built on the annotated semcc::Mutex/CondVar so that a clang
// -Werror=thread-safety build verifies their locking discipline.
#ifndef SEMCC_UTIL_SYNC_H_
#define SEMCC_UTIL_SYNC_H_

#include <chrono>
#include <set>
#include <string>

#include "util/annotations.h"
#include "util/macros.h"

namespace semcc {

/// \brief Counting semaphore (C++20 std::counting_semaphore lacks a
/// try_acquire_for on some libstdc++ versions we target, so we roll our own).
class Semaphore {
 public:
  explicit Semaphore(int initial = 0) : count_(initial) {}
  SEMCC_DISALLOW_COPY_AND_ASSIGN(Semaphore);

  void Post(int n = 1) SEMCC_EXCLUDES(mu_) {
    MutexLock guard(mu_);
    count_ += n;
    if (n == 1) {
      cv_.NotifyOne();
    } else {
      cv_.NotifyAll();
    }
  }

  void Wait() SEMCC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (count_ <= 0) cv_.Wait(lock);
    --count_;
  }

  bool WaitFor(std::chrono::milliseconds timeout) SEMCC_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (count_ <= 0) {
      if (cv_.WaitUntil(lock, deadline) == std::cv_status::timeout &&
          count_ <= 0) {
        return false;
      }
    }
    --count_;
    return true;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ SEMCC_GUARDED_BY(mu_);
};

/// \brief One-shot count-down latch.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}
  SEMCC_DISALLOW_COPY_AND_ASSIGN(CountDownLatch);

  void CountDown() SEMCC_EXCLUDES(mu_) {
    MutexLock guard(mu_);
    if (count_ > 0 && --count_ == 0) cv_.NotifyAll();
  }

  void Wait() SEMCC_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (count_ != 0) cv_.Wait(lock);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  int count_ SEMCC_GUARDED_BY(mu_);
};

/// \brief A set of named events used to script multi-thread interleavings.
///
/// Scenario tests (paper Figures 4-7) need e.g. "T3 must request its lock
/// only after T1 finished ShipOrder(i1,o1)". Threads call Signal("name") and
/// WaitFor("name"); WaitFor returns false on timeout so a wedged scenario
/// fails the test instead of hanging it.
class ScriptedSchedule {
 public:
  ScriptedSchedule() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(ScriptedSchedule);

  void Signal(const std::string& event) SEMCC_EXCLUDES(mu_) {
    MutexLock guard(mu_);
    fired_.insert(event);
    cv_.NotifyAll();
  }

  bool WaitFor(const std::string& event,
               std::chrono::milliseconds timeout = std::chrono::seconds(10))
      SEMCC_EXCLUDES(mu_) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    MutexLock lock(mu_);
    while (fired_.count(event) == 0) {
      if (cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
        return fired_.count(event) > 0;
      }
    }
    return true;
  }

  bool HasFired(const std::string& event) SEMCC_EXCLUDES(mu_) {
    MutexLock guard(mu_);
    return fired_.count(event) > 0;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  std::set<std::string> fired_ SEMCC_GUARDED_BY(mu_);
};

}  // namespace semcc

#endif  // SEMCC_UTIL_SYNC_H_
