// Synchronization helpers: semaphore, count-down latch, and a scripted
// schedule used by scenario tests to force the paper's exact interleavings.
#ifndef SEMCC_UTIL_SYNC_H_
#define SEMCC_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <string>

#include "util/macros.h"

namespace semcc {

/// \brief Counting semaphore (C++20 std::counting_semaphore lacks a
/// try_acquire_for on some libstdc++ versions we target, so we roll our own).
class Semaphore {
 public:
  explicit Semaphore(int initial = 0) : count_(initial) {}
  SEMCC_DISALLOW_COPY_AND_ASSIGN(Semaphore);

  void Post(int n = 1) {
    std::lock_guard<std::mutex> guard(mu_);
    count_ += n;
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  bool WaitFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return count_ > 0; })) return false;
    --count_;
    return true;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// \brief One-shot count-down latch.
class CountDownLatch {
 public:
  explicit CountDownLatch(int count) : count_(count) {}
  SEMCC_DISALLOW_COPY_AND_ASSIGN(CountDownLatch);

  void CountDown() {
    std::lock_guard<std::mutex> guard(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// \brief A set of named events used to script multi-thread interleavings.
///
/// Scenario tests (paper Figures 4-7) need e.g. "T3 must request its lock
/// only after T1 finished ShipOrder(i1,o1)". Threads call Signal("name") and
/// WaitFor("name"); WaitFor returns false on timeout so a wedged scenario
/// fails the test instead of hanging it.
class ScriptedSchedule {
 public:
  ScriptedSchedule() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(ScriptedSchedule);

  void Signal(const std::string& event) {
    std::lock_guard<std::mutex> guard(mu_);
    fired_.insert(event);
    cv_.notify_all();
  }

  bool WaitFor(const std::string& event,
               std::chrono::milliseconds timeout = std::chrono::seconds(10)) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [&] { return fired_.count(event) > 0; });
  }

  bool HasFired(const std::string& event) {
    std::lock_guard<std::mutex> guard(mu_);
    return fired_.count(event) > 0;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<std::string> fired_;
};

}  // namespace semcc

#endif  // SEMCC_UTIL_SYNC_H_
