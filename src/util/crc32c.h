// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every on-disk log frame. Chosen over plain CRC32 for
// its better error-detection properties on short records and because it is
// the checksum real log implementations use (LevelDB/RocksDB, ext4, iSCSI),
// so corruption tests exercise the same math a production log would.
//
// Software slicing-by-4 implementation — no SSE4.2 dependency, identical
// results on every platform the CI matrix builds.
#ifndef SEMCC_UTIL_CRC32C_H_
#define SEMCC_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace semcc {
namespace crc32c {

/// CRC32C of `data`, seeded with `init` (pass a previous Value to extend a
/// running checksum over concatenated buffers).
uint32_t Extend(uint32_t init, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }
inline uint32_t Value(std::string_view data) {
  return Extend(0, data.data(), data.size());
}

}  // namespace crc32c
}  // namespace semcc

#endif  // SEMCC_UTIL_CRC32C_H_
