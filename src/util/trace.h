// Per-thread ring-buffer event tracer for protocol decisions.
//
// Each thread that emits gets its own fixed-capacity ring of POD events
// (no allocation, no locking on the emit path after the first event);
// when a ring is full the oldest events are overwritten and counted as
// dropped. Dumping merges every thread's ring and sorts by the global
// sequence number stamped at emit time.
//
// Turning it on (both ways compose; either suffices):
//  * `SEMCC_TRACE` environment variable — "0"/unset is off; any other
//    value enables tracing process-wide, and a value other than "1"/"on"
//    is additionally treated as an output path that the process dumps
//    JSON-lines to at exit (convenient for benches:
//    `SEMCC_TRACE=/tmp/fig5.trace ./bench_fig5_bypass`).
//  * `SEMCC_TRACE_CAPTURE=<path>` — like a path-valued SEMCC_TRACE but the
//    exit-time dump uses the compact binary capture format instead of
//    JSON-lines, replayable with tools/trace_replay.
//  * `ProtocolOptions::trace` — per-database; the instrumented components
//    pass it into Active().
//
// When tracing is off the instrumentation call sites reduce to one
// predicted-false branch on a relaxed atomic load — the emit path, the
// rings, and the seq counter are never touched (DESIGN.md §5.5).
//
// Dump at quiescent points: SnapshotEvents/ToJsonLines read the rings
// without synchronizing against concurrent Emit calls on other threads
// (the emit path must stay wait-free), so readers must run after the
// traced threads are joined — which is when every consumer here (tests,
// the atexit hook, post-run bench dumps) runs anyway.
#ifndef SEMCC_UTIL_TRACE_H_
#define SEMCC_UTIL_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/macros.h"
#include "util/status.h"

namespace semcc {
namespace trace {

enum class EventKind : uint8_t {
  kGrant = 1,          ///< lock granted on the first (pre-append) scan
  kFastPathGrant = 2,  ///< lock granted lock-free from the grant cache
  kBlock = 3,          ///< request blocked; `other` = blocker id
  kGrantAfterWait = 4, ///< blocked request finally granted; `value` = wait us
  kDeadlockVictim = 5, ///< requester chosen as deadlock victim
  kLockTimeout = 6,    ///< wait exceeded ProtocolOptions::wait_timeout
  kAbortedWait = 7,    ///< wait abandoned: transaction abort requested
  kComplete = 8,       ///< subtransaction completed (locks become retained)
  kRelease = 9,        ///< top-level release of the whole tree's locks
  kWakeup = 10,        ///< a shard's waiters were notified; `shard` = which
  kTxnBegin = 11,
  kTxnCommit = 12,
  kTxnAbort = 13,
  kTxnRetry = 14,      ///< system abort being retried; `value` = attempt
  kWalAppend = 15,     ///< `txn` = lsn
  kWalFlush = 16,      ///< `other` = records in batch, `value` = micros
  kWalDegrade = 17,    ///< flush retries exhausted; WAL now read-only
  kSnapshotRead = 18,  ///< MVCC read, no lock; `other` = snapshot ts,
                       ///< `value` = version ts observed
  kWalCheckpoint = 19, ///< log prefix truncated; `txn` = trunc LSN,
                       ///< `other` = records dropped, `value` = bytes freed
  kModeFlip = 20,      ///< adaptive controller flipped a type slot's mode;
                       ///< `txn` = epoch, `other` = type slot,
                       ///< `value` = new CcMode, `verdict` = old CcMode
};

const char* EventKindName(EventKind k);

/// Event flag bits.
inline constexpr uint8_t kFlagBlockerRetained = 1;  ///< blocking entry was a
                                                    ///< retained lock
inline constexpr uint8_t kFlagKeyRange = 2;  ///< key_lo/key_hi carry the
                                             ///< request's key interval
                                             ///< (keyrange_locks)
inline constexpr uint8_t kFlagIsWrite = 4;   ///< requesting method is a
                                             ///< writer (replay fidelity)

/// \brief One trace event. Plain data; `method` is a truncated copy so the
/// event stays valid after the SubTxn it describes is destroyed.
struct Event {
  uint64_t seq = 0;     ///< global emit order (stamped by Emit)
  uint64_t micros = 0;  ///< since process trace start (stamped by Emit)
  uint64_t txn = 0;     ///< subtxn id (WAL events: lsn)
  uint64_t root = 0;    ///< top-level transaction id
  uint64_t other = 0;   ///< blocker subtxn id / batch records / ...
  uint64_t value = 0;   ///< wait micros / flush micros / retry attempt / ...
  uint64_t target = 0;  ///< lock-target key
  /// Key-interval annotation of the lock target (valid iff flags has
  /// kFlagKeyRange; see ProtocolOptions::keyrange_locks).
  int64_t key_lo = 0;
  int64_t key_hi = 0;
  /// Replay fidelity (lock events): the requester's object type id and up
  /// to two integer method arguments, so a captured trace can be replayed
  /// through the real commutativity matrix (tools/trace_replay).
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  uint32_t shard = 0;
  uint16_t depth = 0;
  uint16_t type_id = 0;      ///< requester's schema TypeId (lock events)
  uint8_t argc = 0;          ///< how many of arg0/arg1 are meaningful (0-2)
  uint8_t target_space = 0;  ///< LockTarget::Space
  uint8_t kind = 0;          ///< EventKind
  uint8_t verdict = 0;       ///< ConflictOutcome
  uint8_t flags = 0;
  char method[26] = {0};  ///< NUL-terminated, truncated

  void set_method(const std::string& m);
  std::string ToJson() const;
};

namespace internal {
/// Process-wide enable flag. Exposed so Active() compiles down to one
/// inline relaxed load + predicted-false branch — an out-of-line call per
/// instrumented operation is measurable on the lock fast path. Written by
/// Enable() and the SEMCC_TRACE env init, which trace.cc runs from a
/// static initializer (before main), so ordinary code never observes a
/// pre-init false when the env var is set.
extern std::atomic<bool> g_enabled;
}  // namespace internal

/// Process-wide enable (SEMCC_TRACE env, or Enable()). Relaxed load.
bool GloballyEnabled();

/// The gate instrumented components use; `component_flag` is their own
/// opt-in (e.g. ProtocolOptions::trace).
inline bool Active(bool component_flag) {
  return SEMCC_PREDICT_FALSE(
      component_flag ||
      internal::g_enabled.load(std::memory_order_relaxed));
}

/// Programmatic enable/disable (overrides the env decision; tests).
void Enable(bool on);

/// Stamp seq + timestamp and append to this thread's ring.
void Emit(Event e);

/// Events currently buffered across all rings, in seq order.
std::vector<Event> SnapshotEvents();

/// Total events overwritten by ring wraparound, across all rings.
uint64_t TotalDropped();

/// All buffered events as JSON-lines (one object per line, seq order).
std::string ToJsonLines();

/// Write ToJsonLines() to `path`.
Status WriteJsonLines(const std::string& path);

/// Write all buffered events to `path` in the compact binary capture
/// format (magic "SMCCTRC1"; layout in DESIGN.md §5.9). Same quiescence
/// caveat as SnapshotEvents. Enabled automatically at process exit when
/// `SEMCC_TRACE_CAPTURE=<path>` is set in the environment (which also
/// turns tracing on, like SEMCC_TRACE).
Status WriteBinary(const std::string& path);

/// Read a binary capture produced by WriteBinary into `*out` (seq order,
/// replacing prior contents). Rejects bad magic / version / truncation.
Status ReadBinary(const std::string& path, std::vector<Event>* out);

/// Drop all buffered events and reset the dropped counters (rings stay
/// registered). Does not change the enabled state or the seq counter.
void ResetForTesting();

/// Set the per-thread ring capacity (rounded up to a power of two) and
/// clear existing rings to the new size. Default: 8192 events, overridable
/// at startup via SEMCC_TRACE_RING.
void SetRingCapacityForTesting(size_t capacity);

}  // namespace trace
}  // namespace semcc

#endif  // SEMCC_UTIL_TRACE_H_
