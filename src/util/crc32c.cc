#include "util/crc32c.h"

#include <array>

namespace semcc {
namespace crc32c {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // tab[0] is the classic byte-at-a-time table; tab[1..3] extend it so four
  // input bytes fold in one step (slicing-by-4).
  uint32_t tab[4][256];
};

constexpr Tables BuildTables() {
  Tables t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t.tab[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    t.tab[1][i] = (t.tab[0][i] >> 8) ^ t.tab[0][t.tab[0][i] & 0xFF];
    t.tab[2][i] = (t.tab[1][i] >> 8) ^ t.tab[0][t.tab[1][i] & 0xFF];
    t.tab[3][i] = (t.tab[2][i] >> 8) ^ t.tab[0][t.tab[2][i] & 0xFF];
  }
  return t;
}

constexpr Tables kTables = BuildTables();

}  // namespace

uint32_t Extend(uint32_t init, const char* data, size_t n) {
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t crc = ~init;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
    crc = kTables.tab[3][crc & 0xFF] ^ kTables.tab[2][(crc >> 8) & 0xFF] ^
          kTables.tab[1][(crc >> 16) & 0xFF] ^ kTables.tab[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables.tab[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace crc32c
}  // namespace semcc
