// Result<T>: a Status or a value, following the Arrow idiom.
#ifndef SEMCC_UTIL_RESULT_H_
#define SEMCC_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace semcc {

/// \brief Either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
///
/// [[nodiscard]] for the same reason as Status: a dropped Result hides both
/// the value and the failure (see scripts/semcc_lint.py, discarded-status).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Construct from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok());
  }
  /// Construct from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the value. Undefined behavior if !ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }
  /// Move the value out (used by SEMCC_ASSIGN_OR_RETURN).
  T&& ValueUnsafe() && { return std::move(*value_); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace semcc

#endif  // SEMCC_UTIL_RESULT_H_
