#include "util/metrics.h"

#include <algorithm>
#include <cstdio>
#include <new>
#include <vector>

#include "util/histogram.h"

namespace semcc {
namespace metrics {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

CounterBank::CounterBank(size_t stripes, size_t counters)
    : stripes_(RoundUpPow2(std::max<size_t>(stripes, 1))),
      stripe_mask_(stripes_ - 1),
      counters_(counters) {
  const size_t cells_per_line = kCacheLineBytes / sizeof(std::atomic<uint64_t>);
  stride_ = ((counters + cells_per_line - 1) / cells_per_line) * cells_per_line;
  const size_t total = stripes_ * stride_;
  cells_ = static_cast<std::atomic<uint64_t>*>(::operator new[](
      total * sizeof(std::atomic<uint64_t>), std::align_val_t(kCacheLineBytes)));
  for (size_t i = 0; i < total; ++i) {
    new (&cells_[i]) std::atomic<uint64_t>(0);
  }
}

CounterBank::~CounterBank() {
  ::operator delete[](cells_, std::align_val_t(kCacheLineBytes));
}

size_t ThreadStripeSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

std::string HistogramSummary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f p50=%llu p95=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count), mean(),
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p95),
                static_cast<unsigned long long>(p99),
                static_cast<unsigned long long>(max));
  return buf;
}

AtomicHistogram::AtomicHistogram()
    : buckets_(new std::atomic<uint64_t>[kNumBuckets]) {
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void AtomicHistogram::Add(uint64_t value) {
  buckets_[Histogram::BucketFor(value)].fetch_add(1,
                                                  std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  // Release-publish last: a snapshot that observes this count observes the
  // bucket/sum increments above (it loads the count with acquire first).
  count_.fetch_add(1, std::memory_order_release);
}

HistogramSummary AtomicHistogram::Snapshot() const {
  HistogramSummary s;
  s.count = count_.load(std::memory_order_acquire);
  if (s.count == 0) return s;
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  std::vector<uint64_t> buckets(kNumBuckets);
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  const auto percentile = [&](double p) -> uint64_t {
    uint64_t threshold = static_cast<uint64_t>(double(s.count) * p / 100.0);
    if (threshold >= s.count) threshold = s.count - 1;
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets[i];
      if (seen > threshold) {
        return std::min(Histogram::BucketUpperBound(i), s.max);
      }
    }
    return s.max;
  };
  s.p50 = percentile(50);
  s.p90 = percentile(90);
  s.p95 = percentile(95);
  s.p99 = percentile(99);
  return s;
}

void JsonWriter::Key(const char* key) {
  if (!first_) out_ += ", ";
  first_ = false;
  out_ += '"';
  out_ += key;
  out_ += "\": ";
}

void JsonWriter::Field(const char* key, uint64_t v) {
  Key(key);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::Field(const char* key, double v) {
  Key(key);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  out_ += buf;
}

void JsonWriter::Field(const char* key, bool v) {
  Key(key);
  out_ += v ? "true" : "false";
}

void JsonWriter::Field(const char* key, const std::string& v) {
  Key(key);
  out_ += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') out_ += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out_ += c;
  }
  out_ += '"';
}

void JsonWriter::FieldRaw(const char* key, const std::string& json) {
  Key(key);
  out_ += json;
}

std::string JsonWriter::Close() {
  out_ += '}';
  return std::move(out_);
}

}  // namespace metrics
}  // namespace semcc
