// Deterministic pseudo-random generators for workloads and property tests.
#ifndef SEMCC_UTIL_RANDOM_H_
#define SEMCC_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace semcc {

/// \brief xorshift128+ generator: fast, deterministic, good enough for
/// workload generation (not for cryptography).
class Random {
 public:
  explicit Random(uint64_t seed = 0x5eed5eed5eedULL);

  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. hi must be >= lo.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Uniform double in [0, 1).
  double NextDouble();

  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (std::size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// \brief Zipf-distributed generator over [0, n): item 0 is the most popular.
///
/// Uses the classical rejection-free inversion on the precomputed CDF for
/// small n and Gray et al.'s approximation for large n.
class ZipfianGenerator {
 public:
  /// \param n     number of distinct items (> 0)
  /// \param theta skew parameter; 0 = uniform, 0.99 = typical hot-spot skew
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Next item in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Random rng_;
};

}  // namespace semcc

#endif  // SEMCC_UTIL_RANDOM_H_
