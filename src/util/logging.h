// Minimal thread-safe leveled logging.
#ifndef SEMCC_UTIL_LOGGING_H_
#define SEMCC_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace semcc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are dropped. Default: kWarn, so
/// tests and benches stay quiet unless something is wrong.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SEMCC_LOG(level)                                                    \
  ::semcc::internal::LogMessage(::semcc::LogLevel::k##level, __FILE__, __LINE__)

// Invariant check that is active in all build types. Fails fast: a broken
// invariant in a concurrency-control engine must never be silently ignored.
#define SEMCC_CHECK(cond)                                                  \
  if (SEMCC_PREDICT_TRUE(cond)) {                                          \
  } else                                                                   \
    ::semcc::internal::LogMessage(::semcc::LogLevel::kFatal, __FILE__,     \
                                  __LINE__)                                \
        << "Check failed: " #cond " "

#define SEMCC_DCHECK(cond) SEMCC_CHECK(cond)

}  // namespace semcc

#include "util/macros.h"

#endif  // SEMCC_UTIL_LOGGING_H_
