#include "util/status.h"

namespace semcc {

namespace {
const std::string kEmptyString;
}  // namespace

Status::Status(StatusCode code, std::string msg)
    : state_(code == StatusCode::kOk ? nullptr
                                     : new State{code, std::move(msg)}) {}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmptyString;
}

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfSpace:
      return "OutOfSpace";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kPreconditionFailed:
      return "PreconditionFailed";
    case StatusCode::kIOError:
      return "IOError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace semcc
