// Steady-clock stopwatch helpers.
#ifndef SEMCC_UTIL_STOPWATCH_H_
#define SEMCC_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace semcc {

/// \brief Wall-clock stopwatch based on std::chrono::steady_clock.
class StopWatch {
 public:
  StopWatch() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  uint64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Now() - start_)
        .count();
  }
  uint64_t ElapsedMillis() const { return ElapsedMicros() / 1000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static Clock::time_point Now() { return Clock::now(); }
  Clock::time_point start_;
};

}  // namespace semcc

#endif  // SEMCC_UTIL_STOPWATCH_H_
