// Status: the error-handling currency of the semcc core (no exceptions),
// following the Arrow / RocksDB idiom.
#ifndef SEMCC_UTIL_STATUS_H_
#define SEMCC_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>

#include "util/macros.h"

namespace semcc {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfSpace = 4,
  kCorruption = 5,
  kDeadlock = 6,       // transaction chosen as a deadlock victim
  kAborted = 7,        // transaction was aborted (by itself or the system)
  kTimedOut = 8,       // a lock wait exceeded its deadline
  kNotSupported = 9,
  kInternal = 10,
  kPreconditionFailed = 11,  // application-level precondition (e.g. order not paid)
  kIOError = 12,             // device-level I/O failure (short write, fsync EIO)
};

/// \brief Operation outcome: an error code plus an optional message.
///
/// A moved-from or default-constructed Status is OK. Non-OK statuses carry a
/// heap-allocated state so that the common OK path is a single null pointer.
///
/// [[nodiscard]]: ignoring a Status silently swallows failures (the classic
/// unchecked-fsync bug); callers that genuinely do not care must say so with
/// an explicit `(void)` cast. scripts/semcc_lint.py check `discarded-status`
/// relies on this attribute being present.
class [[nodiscard]] Status {
 public:
  Status() noexcept : state_(nullptr) {}
  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_.reset(other.state_ ? new State(*other.state_) : nullptr);
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfSpace(std::string msg) {
    return Status(StatusCode::kOutOfSpace, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status PreconditionFailed(std::string msg) {
    return Status(StatusCode::kPreconditionFailed, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfSpace() const { return code() == StatusCode::kOutOfSpace; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsDeadlock() const { return code() == StatusCode::kDeadlock; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsPreconditionFailed() const {
    return code() == StatusCode::kPreconditionFailed;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::unique_ptr<State> state_;
};

const char* StatusCodeToString(StatusCode code);

}  // namespace semcc

#endif  // SEMCC_UTIL_STATUS_H_
