// Clang Thread Safety Analysis annotations and capability-attributed
// synchronization primitives.
//
// Every mutex-protected component in semcc declares which mutex guards which
// member (SEMCC_GUARDED_BY) and which private methods expect a lock to be
// held by the caller (SEMCC_REQUIRES), so a clang build with
// -Werror=thread-safety statically rejects unguarded accesses and
// lock-contract violations. Under gcc (or any non-clang compiler) every
// annotation expands to nothing and the wrappers below are zero-cost
// forwarders to the std primitives.
//
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for attribute
// semantics.
#ifndef SEMCC_UTIL_ANNOTATIONS_H_
#define SEMCC_UTIL_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/macros.h"

#if defined(__clang__)
#define SEMCC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SEMCC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// --- attribute macros ----------------------------------------------------

#define SEMCC_CAPABILITY(x) SEMCC_THREAD_ANNOTATION(capability(x))
#define SEMCC_SCOPED_CAPABILITY SEMCC_THREAD_ANNOTATION(scoped_lockable)
#define SEMCC_GUARDED_BY(x) SEMCC_THREAD_ANNOTATION(guarded_by(x))
#define SEMCC_PT_GUARDED_BY(x) SEMCC_THREAD_ANNOTATION(pt_guarded_by(x))
#define SEMCC_ACQUIRED_BEFORE(...) \
  SEMCC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SEMCC_ACQUIRED_AFTER(...) \
  SEMCC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SEMCC_REQUIRES(...) \
  SEMCC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SEMCC_REQUIRES_SHARED(...) \
  SEMCC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SEMCC_ACQUIRE(...) \
  SEMCC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SEMCC_ACQUIRE_SHARED(...) \
  SEMCC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SEMCC_RELEASE(...) \
  SEMCC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SEMCC_RELEASE_SHARED(...) \
  SEMCC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SEMCC_RELEASE_GENERIC(...) \
  SEMCC_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define SEMCC_TRY_ACQUIRE(...) \
  SEMCC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SEMCC_EXCLUDES(...) SEMCC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SEMCC_ASSERT_CAPABILITY(x) SEMCC_THREAD_ANNOTATION(assert_capability(x))
#define SEMCC_RETURN_CAPABILITY(x) SEMCC_THREAD_ANNOTATION(lock_returned(x))
#define SEMCC_NO_THREAD_SAFETY_ANALYSIS \
  SEMCC_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace semcc {

// --- capability-attributed mutexes ---------------------------------------

/// \brief std::mutex with the `capability` attribute, so members can be
/// declared SEMCC_GUARDED_BY(mu_) and methods SEMCC_REQUIRES(mu_).
class SEMCC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(Mutex);

  void Lock() SEMCC_ACQUIRE() { mu_.lock(); }
  void Unlock() SEMCC_RELEASE() { mu_.unlock(); }
  bool TryLock() SEMCC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Documents (to the analysis) that the calling context holds the mutex
  /// through some channel the analysis cannot see. Runtime no-op.
  void AssertHeld() const SEMCC_ASSERT_CAPABILITY(this) {}

  /// The underlying std::mutex, for interop with std machinery (condition
  /// variables). Invisible to the analysis — prefer MutexLock/CondVar.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief std::shared_mutex with the `capability` attribute.
class SEMCC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(SharedMutex);

  void Lock() SEMCC_ACQUIRE() { mu_.lock(); }
  void Unlock() SEMCC_RELEASE() { mu_.unlock(); }
  void LockShared() SEMCC_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() SEMCC_RELEASE_SHARED() { mu_.unlock_shared(); }
  void AssertHeld() const SEMCC_ASSERT_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

class CondVar;

// --- scoped lock guards --------------------------------------------------

/// \brief RAII exclusive lock on a semcc::Mutex (the annotated analogue of
/// std::unique_lock). Supports temporary Unlock/Lock for wait loops.
class SEMCC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SEMCC_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() SEMCC_RELEASE() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(MutexLock);

  void Unlock() SEMCC_RELEASE() { lock_.unlock(); }
  void Lock() SEMCC_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// \brief RAII shared (reader) lock on a semcc::SharedMutex.
class SEMCC_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SEMCC_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderMutexLock() SEMCC_RELEASE() { mu_.UnlockShared(); }
  SEMCC_DISALLOW_COPY_AND_ASSIGN(ReaderMutexLock);

 private:
  SharedMutex& mu_;
};

/// \brief RAII exclusive (writer) lock on a semcc::SharedMutex.
class SEMCC_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SEMCC_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() SEMCC_RELEASE() { mu_.Unlock(); }
  SEMCC_DISALLOW_COPY_AND_ASSIGN(WriterMutexLock);

 private:
  SharedMutex& mu_;
};

// --- condition variable --------------------------------------------------

/// \brief Condition variable paired with semcc::Mutex via MutexLock.
///
/// Waits atomically release and reacquire the MutexLock's mutex; the
/// analysis treats the capability as held across the wait (the standard
/// modelling — the brief release inside wait() is invisible, exactly as
/// with std::condition_variable + std::unique_lock).
///
/// No predicate overloads on purpose: a predicate lambda reads guarded
/// state from a context the analysis cannot see into, which would force
/// SEMCC_NO_THREAD_SAFETY_ANALYSIS escapes at every wait site. Write the
/// `while (!cond) cv.Wait(lock);` loop in the annotated caller instead.
class CondVar {
 public:
  CondVar() = default;
  SEMCC_DISALLOW_COPY_AND_ASSIGN(CondVar);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(MutexLock& lock,
                         const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout);
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace semcc

#endif  // SEMCC_UTIL_ANNOTATIONS_H_
