// Common macros used across the semcc codebase.
#ifndef SEMCC_UTIL_MACROS_H_
#define SEMCC_UTIL_MACROS_H_

#define SEMCC_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;            \
  TypeName& operator=(const TypeName&) = delete

#define SEMCC_DISALLOW_MOVE(TypeName)  \
  TypeName(TypeName&&) = delete;       \
  TypeName& operator=(TypeName&&) = delete

#if defined(__GNUC__) || defined(__clang__)
#define SEMCC_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#define SEMCC_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#else
#define SEMCC_PREDICT_FALSE(x) (x)
#define SEMCC_PREDICT_TRUE(x) (x)
#endif

// Evaluates an expression returning a Status; returns it from the enclosing
// function if it is not OK.
#define SEMCC_RETURN_NOT_OK(expr)                        \
  do {                                                   \
    ::semcc::Status _st = (expr);                        \
    if (SEMCC_PREDICT_FALSE(!_st.ok())) return _st;      \
  } while (false)

// Evaluates an expression returning a Result<T>; on success assigns the value
// to `lhs`, otherwise returns the error status from the enclosing function.
#define SEMCC_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                                \
  if (SEMCC_PREDICT_FALSE(!result_name.ok()))                \
    return result_name.status();                             \
  lhs = std::move(result_name).ValueUnsafe()

#define SEMCC_CONCAT_IMPL(x, y) x##y
#define SEMCC_CONCAT(x, y) SEMCC_CONCAT_IMPL(x, y)

#define SEMCC_ASSIGN_OR_RETURN(lhs, rexpr) \
  SEMCC_ASSIGN_OR_RETURN_IMPL(SEMCC_CONCAT(_semcc_result_, __LINE__), lhs, rexpr)

#endif  // SEMCC_UTIL_MACROS_H_
