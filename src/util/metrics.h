// Lock-free metrics primitives for the protocol observability layer.
//
// Two building blocks (DESIGN.md §5.5):
//
//  * CounterBank — a fixed set of monotonic counters replicated across
//    cache-line-padded *stripes*. Writers increment one stripe's cell with a
//    relaxed fetch_add (no cross-stripe traffic: the common case is one
//    writer per stripe, e.g. the lock manager stripes by shard index);
//    readers Sum() across stripes with acquire loads. Each counter is
//    individually monotonic; a summed snapshot taken while writers run is a
//    consistent *lower bound* per counter, and exact at quiescent points.
//
//  * AtomicHistogram — the bounded-bucket latency histogram (same bucket
//    layout as util/histogram.h: exact to 64, then ~4% resolution) with
//    atomic buckets instead of a mutex. Add() is wait-free (two relaxed
//    fetch_adds plus CAS loops for min/max); Snapshot() materializes
//    count/sum/min/max and the p50/p90/p95/p99 percentiles in one pass.
//
// Both are always compiled in; whether the *callers* pay anything is the
// call sites' affair (see the instrumentation notes in cc/lock_manager.cc).
//
// JsonWriter is the small comma-tracking JSON object builder the stats
// snapshots share so every ToJson() emits the same well-formed shape.
#ifndef SEMCC_UTIL_METRICS_H_
#define SEMCC_UTIL_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "util/macros.h"

namespace semcc {
namespace metrics {

inline constexpr size_t kCacheLineBytes = 64;

/// \brief Striped bank of relaxed monotonic counters.
///
/// Layout: `stripes` rows of `counters` cells, each row padded out to a
/// whole number of cache lines so two stripes never share a line. Cells
/// within one stripe share lines deliberately — they are written by the
/// same context (shard / thread), so there is no false sharing to avoid.
class CounterBank {
 public:
  CounterBank(size_t stripes, size_t counters);
  ~CounterBank();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(CounterBank);

  /// Relaxed increment of `counter` on `stripe` (mod the stripe count).
  void Inc(size_t stripe, size_t counter, uint64_t n = 1) {
    cells_[(stripe & stripe_mask_) * stride_ + counter].fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Acquire-sum of `counter` across all stripes (monotonic lower bound
  /// while writers run; exact at quiescent points).
  uint64_t Sum(size_t counter) const {
    uint64_t total = 0;
    for (size_t s = 0; s < stripes_; ++s) {
      total += cells_[s * stride_ + counter].load(std::memory_order_acquire);
    }
    return total;
  }

  /// One stripe's value (per-shard breakdowns).
  uint64_t StripeValue(size_t stripe, size_t counter) const {
    return cells_[(stripe & stripe_mask_) * stride_ + counter].load(
        std::memory_order_acquire);
  }

  size_t stripes() const { return stripes_; }
  size_t counters() const { return counters_; }

 private:
  size_t stripes_;      // power of two
  size_t stripe_mask_;  // stripes_ - 1
  size_t counters_;
  size_t stride_;  // cells per stripe, rounded up to cache-line multiples
  std::atomic<uint64_t>* cells_;  // aligned to kCacheLineBytes
};

/// Stable per-process slot for striping by thread where no natural stripe
/// (such as a shard index) exists. Dense assignment: first caller gets 0.
size_t ThreadStripeSlot();

/// \brief Point-in-time summary of an AtomicHistogram (plain data).
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;

  double mean() const { return count == 0 ? 0.0 : double(sum) / count; }
  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;
};

/// \brief Wait-free histogram over non-negative values (e.g. microseconds).
///
/// Memory-ordering contract: bucket/sum increments are relaxed; the count
/// increment is a release and Snapshot() loads the count with acquire
/// *first*, so every event counted by a snapshot has its bucket increment
/// visible — percentiles never index into a shorter distribution than the
/// count claims. Events mid-Add may be missed entirely; at quiescent points
/// the snapshot is exact.
class AtomicHistogram {
 public:
  AtomicHistogram();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(AtomicHistogram);

  void Add(uint64_t value);
  HistogramSummary Snapshot() const;

 private:
  // Matches util/histogram.h: 64 exact buckets + 16 sub-buckets per power
  // of two up to 2^63.
  static constexpr int kNumBuckets = 64 + 58 * 16;

  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~uint64_t{0}};
  std::atomic<uint64_t> max_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
};

/// \brief Minimal JSON object builder (comma tracking + string escaping)
/// shared by the stats ToJson() exporters.
class JsonWriter {
 public:
  JsonWriter() { out_ = "{"; }

  void Field(const char* key, uint64_t v);
  void Field(const char* key, double v);
  void Field(const char* key, bool v);
  void Field(const char* key, const std::string& v);
  /// Splice a pre-built JSON value (object/array) under `key`.
  void FieldRaw(const char* key, const std::string& json);

  /// Close the object and return it. The writer is spent afterwards.
  std::string Close();

 private:
  void Key(const char* key);
  std::string out_;
  bool first_ = true;
};

}  // namespace metrics
}  // namespace semcc

#endif  // SEMCC_UTIL_METRICS_H_
