// Latency/size histogram with percentile queries, for the bench harness.
#ifndef SEMCC_UTIL_HISTOGRAM_H_
#define SEMCC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/annotations.h"

namespace semcc {

/// \brief Thread-safe histogram over non-negative values (e.g. microseconds).
///
/// Exponentially sized buckets: exact up to 64, then ~4% resolution.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const;
  double mean() const;
  uint64_t min() const;
  uint64_t max() const;
  /// p in [0, 100].
  uint64_t Percentile(double p) const;

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;

  // Bucket layout, shared with metrics::AtomicHistogram (util/metrics.h):
  // 64 exact buckets + 16 sub-buckets per power of two up to 2^63.
  static constexpr int kNumBuckets = 64 + 58 * 16;
  static int BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(int bucket);

 private:
  mutable Mutex mu_;
  std::vector<uint64_t> buckets_ SEMCC_GUARDED_BY(mu_);
  uint64_t count_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t sum_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t min_ SEMCC_GUARDED_BY(mu_) = 0;
  uint64_t max_ SEMCC_GUARDED_BY(mu_) = 0;
};

}  // namespace semcc

#endif  // SEMCC_UTIL_HISTOGRAM_H_
