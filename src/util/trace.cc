#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "util/annotations.h"
#include "util/coding.h"
#include "util/metrics.h"

namespace semcc {
namespace trace {

namespace internal {
std::atomic<bool> g_enabled{false};
}  // namespace internal

namespace {

using internal::g_enabled;

struct Ring {
  std::vector<Event> buf;
  /// Events ever written; slot = head % capacity. head > capacity means
  /// head - capacity events were overwritten (wraparound).
  uint64_t head = 0;
};

struct Registry {
  Mutex mu;
  std::vector<std::unique_ptr<Ring>> rings SEMCC_GUARDED_BY(mu);
  size_t capacity SEMCC_GUARDED_BY(mu) = 8192;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: rings outlive any thread
  return *r;
}

std::atomic<uint64_t> g_seq{0};

std::chrono::steady_clock::time_point StartTime() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

void DumpAtExit();

/// One-time env read: SEMCC_TRACE enables tracing; SEMCC_TRACE_RING sizes
/// the rings; a path-like SEMCC_TRACE value registers an exit-time
/// JSON-lines dump; SEMCC_TRACE_CAPTURE=<path> enables tracing and
/// registers an exit-time *binary* capture dump (tools/trace_replay).
struct EnvInit {
  std::string dump_path;
  std::string capture_path;
  EnvInit() {
    if (const char* ring = std::getenv("SEMCC_TRACE_RING");
        ring != nullptr && ring[0] != '\0') {
      const long v = std::atol(ring);
      if (v > 0) {
        MutexLock l(registry().mu);
        registry().capacity = static_cast<size_t>(v);
      }
    }
    bool want_atexit = false;
    if (const char* cap = std::getenv("SEMCC_TRACE_CAPTURE");
        cap != nullptr && cap[0] != '\0' && std::strcmp(cap, "0") != 0) {
      capture_path = cap;
      g_enabled.store(true, std::memory_order_relaxed);
      (void)StartTime();
      want_atexit = true;
    }
    const char* env = std::getenv("SEMCC_TRACE");
    if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
      g_enabled.store(true, std::memory_order_relaxed);
      (void)StartTime();
      if (std::strcmp(env, "1") != 0 && std::strcmp(env, "on") != 0) {
        dump_path = env;
        want_atexit = true;
      }
    }
    if (want_atexit) std::atexit(&DumpAtExit);
  }
};

EnvInit& env_init() {
  static EnvInit* e = new EnvInit();
  return *e;
}

/// Force the env read before main so Active()'s inline g_enabled load never
/// observes a pre-init false in a process launched with SEMCC_TRACE set.
[[maybe_unused]] EnvInit& g_env_bootstrap = env_init();

void DumpAtExit() {
  const std::string& path = env_init().dump_path;
  if (!path.empty()) {
    Status st = WriteJsonLines(path);
    if (!st.ok()) {
      std::fprintf(stderr, "SEMCC_TRACE dump to %s failed: %s\n", path.c_str(),
                   st.ToString().c_str());
    } else {
      std::fprintf(stderr, "SEMCC_TRACE: wrote %s\n", path.c_str());
    }
  }
  const std::string& cap = env_init().capture_path;
  if (!cap.empty()) {
    Status st = WriteBinary(cap);
    if (!st.ok()) {
      std::fprintf(stderr, "SEMCC_TRACE_CAPTURE dump to %s failed: %s\n",
                   cap.c_str(), st.ToString().c_str());
    } else {
      std::fprintf(stderr, "SEMCC_TRACE_CAPTURE: wrote %s\n", cap.c_str());
    }
  }
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

Ring* ThisThreadRing() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>();
    Ring* raw = owned.get();
    Registry& reg = registry();
    MutexLock l(reg.mu);
    raw->buf.resize(RoundUpPow2(reg.capacity));
    reg.rings.push_back(std::move(owned));
    return raw;
  }();
  return ring;
}

}  // namespace

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kGrant: return "grant";
    case EventKind::kFastPathGrant: return "fastpath-grant";
    case EventKind::kBlock: return "block";
    case EventKind::kGrantAfterWait: return "grant-after-wait";
    case EventKind::kDeadlockVictim: return "deadlock-victim";
    case EventKind::kLockTimeout: return "lock-timeout";
    case EventKind::kAbortedWait: return "aborted-wait";
    case EventKind::kComplete: return "complete";
    case EventKind::kRelease: return "release";
    case EventKind::kWakeup: return "wakeup";
    case EventKind::kTxnBegin: return "txn-begin";
    case EventKind::kTxnCommit: return "txn-commit";
    case EventKind::kTxnAbort: return "txn-abort";
    case EventKind::kTxnRetry: return "txn-retry";
    case EventKind::kWalAppend: return "wal-append";
    case EventKind::kWalFlush: return "wal-flush";
    case EventKind::kWalDegrade: return "wal-degrade";
    case EventKind::kSnapshotRead: return "snapshot-read";
    case EventKind::kWalCheckpoint: return "wal-checkpoint";
    case EventKind::kModeFlip: return "mode-flip";
  }
  return "?";
}

void Event::set_method(const std::string& m) {
  const size_t n = std::min(m.size(), sizeof(method) - 1);
  std::memcpy(method, m.data(), n);
  method[n] = '\0';
}

std::string Event::ToJson() const {
  metrics::JsonWriter w;
  w.Field("seq", seq);
  w.Field("us", micros);
  w.Field("kind", std::string(EventKindName(static_cast<EventKind>(kind))));
  w.Field("txn", txn);
  w.Field("root", root);
  w.Field("depth", static_cast<uint64_t>(depth));
  w.Field("method", std::string(method));
  w.Field("space", static_cast<uint64_t>(target_space));
  w.Field("target", target);
  w.Field("shard", static_cast<uint64_t>(shard));
  w.Field("verdict", static_cast<uint64_t>(verdict));
  w.Field("other", other);
  w.Field("value", value);
  w.Field("flags", static_cast<uint64_t>(flags));
  w.Field("type_id", static_cast<uint64_t>(type_id));
  if (argc > 0) {
    // Signed method arguments, like key_lo/key_hi below.
    char abuf[24];
    w.Field("argc", static_cast<uint64_t>(argc));
    std::snprintf(abuf, sizeof(abuf), "%lld", static_cast<long long>(arg0));
    w.FieldRaw("arg0", abuf);
    if (argc > 1) {
      std::snprintf(abuf, sizeof(abuf), "%lld", static_cast<long long>(arg1));
      w.FieldRaw("arg1", abuf);
    }
  }
  if ((flags & kFlagKeyRange) != 0) {
    // Signed values (interval hulls can reach INT64_MIN/MAX), so they can't
    // go through the unsigned Field overload.
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(key_lo));
    w.FieldRaw("key_lo", buf);
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(key_hi));
    w.FieldRaw("key_hi", buf);
  }
  return w.Close();
}

bool GloballyEnabled() {
  (void)env_init();
  return g_enabled.load(std::memory_order_relaxed);
}

void Enable(bool on) {
  (void)env_init();  // keep env/programmatic ordering deterministic
  (void)StartTime();
  g_enabled.store(on, std::memory_order_relaxed);
}

void Emit(Event e) {
  e.seq = g_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  e.micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - StartTime())
          .count());
  Ring* ring = ThisThreadRing();
  ring->buf[ring->head & (ring->buf.size() - 1)] = e;
  ring->head++;
}

std::vector<Event> SnapshotEvents() {
  std::vector<Event> out;
  Registry& reg = registry();
  MutexLock l(reg.mu);
  for (const auto& ring : reg.rings) {
    const uint64_t cap = ring->buf.size();
    const uint64_t n = std::min<uint64_t>(ring->head, cap);
    for (uint64_t i = ring->head - n; i < ring->head; ++i) {
      out.push_back(ring->buf[i & (cap - 1)]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return out;
}

uint64_t TotalDropped() {
  uint64_t dropped = 0;
  Registry& reg = registry();
  MutexLock l(reg.mu);
  for (const auto& ring : reg.rings) {
    const uint64_t cap = ring->buf.size();
    if (ring->head > cap) dropped += ring->head - cap;
  }
  return dropped;
}

std::string ToJsonLines() {
  std::string out;
  for (const Event& e : SnapshotEvents()) {
    out += e.ToJson();
    out += '\n';
  }
  return out;
}

Status WriteJsonLines(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace output " + path);
  }
  const std::string lines = ToJsonLines();
  const size_t written = std::fwrite(lines.data(), 1, lines.size(), f);
  std::fclose(f);
  if (written != lines.size()) {
    return Status::IOError("short write to trace output " + path);
  }
  return Status::OK();
}

namespace {

/// Binary capture framing: 8-byte magic, u32 version, u64 event count,
/// then `count` fixed-layout little-endian records (field-by-field; the
/// in-memory struct layout is never written raw, so the format is stable
/// across compilers). Layout documented in DESIGN.md §5.9.
constexpr char kCaptureMagic[8] = {'S', 'M', 'C', 'C', 'T', 'R', 'C', '1'};
constexpr uint32_t kCaptureVersion = 1;

void EncodeEvent(std::string* dst, const Event& e) {
  PutU64(dst, e.seq);
  PutU64(dst, e.micros);
  PutU64(dst, e.txn);
  PutU64(dst, e.root);
  PutU64(dst, e.other);
  PutU64(dst, e.value);
  PutU64(dst, e.target);
  PutI64(dst, e.key_lo);
  PutI64(dst, e.key_hi);
  PutI64(dst, e.arg0);
  PutI64(dst, e.arg1);
  PutU32(dst, e.shard);
  PutU16(dst, e.depth);
  PutU16(dst, e.type_id);
  PutU8(dst, e.argc);
  PutU8(dst, e.target_space);
  PutU8(dst, e.kind);
  PutU8(dst, e.verdict);
  PutU8(dst, e.flags);
  dst->append(e.method, sizeof(e.method));
}

bool DecodeEvent(Decoder* dec, Event* e) {
  if (!dec->GetU64(&e->seq) || !dec->GetU64(&e->micros) ||
      !dec->GetU64(&e->txn) || !dec->GetU64(&e->root) ||
      !dec->GetU64(&e->other) || !dec->GetU64(&e->value) ||
      !dec->GetU64(&e->target) || !dec->GetI64(&e->key_lo) ||
      !dec->GetI64(&e->key_hi) || !dec->GetI64(&e->arg0) ||
      !dec->GetI64(&e->arg1) || !dec->GetU32(&e->shard) ||
      !dec->GetU16(&e->depth) || !dec->GetU16(&e->type_id) ||
      !dec->GetU8(&e->argc) || !dec->GetU8(&e->target_space) ||
      !dec->GetU8(&e->kind) || !dec->GetU8(&e->verdict) ||
      !dec->GetU8(&e->flags)) {
    return false;
  }
  if (dec->remaining() < sizeof(e->method)) return false;
  for (size_t i = 0; i < sizeof(e->method); ++i) {
    uint8_t b;
    if (!dec->GetU8(&b)) return false;
    e->method[i] = static_cast<char>(b);
  }
  e->method[sizeof(e->method) - 1] = '\0';
  return true;
}

}  // namespace

Status WriteBinary(const std::string& path) {
  const std::vector<Event> events = SnapshotEvents();
  std::string buf;
  buf.reserve(sizeof(kCaptureMagic) + 12 + events.size() * 110);
  buf.append(kCaptureMagic, sizeof(kCaptureMagic));
  PutU32(&buf, kCaptureVersion);
  PutU64(&buf, static_cast<uint64_t>(events.size()));
  for (const Event& e : events) EncodeEvent(&buf, e);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open capture output " + path);
  }
  const size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (written != buf.size()) {
    return Status::IOError("short write to capture output " + path);
  }
  return Status::OK();
}

Status ReadBinary(const std::string& path, std::vector<Event>* out) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open capture input " + path);
  }
  std::string buf;
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.append(chunk, n);
  }
  std::fclose(f);
  if (buf.size() < sizeof(kCaptureMagic) + 12 ||
      std::memcmp(buf.data(), kCaptureMagic, sizeof(kCaptureMagic)) != 0) {
    return Status::Corruption("bad capture magic in " + path);
  }
  Decoder dec(std::string_view(buf).substr(sizeof(kCaptureMagic)));
  uint32_t version = 0;
  uint64_t count = 0;
  if (!dec.GetU32(&version) || version != kCaptureVersion) {
    return Status::Corruption("unsupported capture version in " + path);
  }
  if (!dec.GetU64(&count)) {
    return Status::Corruption("truncated capture header in " + path);
  }
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Event e;
    if (!DecodeEvent(&dec, &e)) {
      out->clear();
      return Status::Corruption("truncated capture record in " + path);
    }
    out->push_back(e);
  }
  return Status::OK();
}

void ResetForTesting() {
  Registry& reg = registry();
  MutexLock l(reg.mu);
  for (auto& ring : reg.rings) ring->head = 0;
}

void SetRingCapacityForTesting(size_t capacity) {
  Registry& reg = registry();
  MutexLock l(reg.mu);
  reg.capacity = std::max<size_t>(capacity, 1);
  for (auto& ring : reg.rings) {
    ring->buf.assign(RoundUpPow2(reg.capacity), Event{});
    ring->head = 0;
  }
}

}  // namespace trace
}  // namespace semcc
