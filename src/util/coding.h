// Little-endian binary encoding helpers for log records and catalogs.
#ifndef SEMCC_UTIL_CODING_H_
#define SEMCC_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/result.h"

namespace semcc {

inline void PutU8(std::string* dst, uint8_t v) {
  dst->push_back(static_cast<char>(v));
}

inline void PutU16(std::string* dst, uint16_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutU32(std::string* dst, uint32_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutU64(std::string* dst, uint64_t v) {
  dst->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void PutI64(std::string* dst, int64_t v) {
  PutU64(dst, static_cast<uint64_t>(v));
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutU32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

/// \brief Cursor over an encoded buffer; all Get* return false on underrun.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (data_.size() < 1) return false;
    *v = static_cast<uint8_t>(data_.front());
    data_.remove_prefix(1);
    return true;
  }
  bool GetU16(uint16_t* v) { return GetRaw(v); }
  bool GetU32(uint32_t* v) { return GetRaw(v); }
  bool GetU64(uint64_t* v) { return GetRaw(v); }
  bool GetI64(int64_t* v) { return GetRaw(v); }

  bool GetLengthPrefixed(std::string* out) {
    uint32_t len;
    if (!GetU32(&len) || data_.size() < len) return false;
    out->assign(data_.data(), len);
    data_.remove_prefix(len);
    return true;
  }

  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  template <typename T>
  bool GetRaw(T* v) {
    if (data_.size() < sizeof(T)) return false;
    std::memcpy(v, data_.data(), sizeof(T));
    data_.remove_prefix(sizeof(T));
    return true;
  }
  std::string_view data_;
};

}  // namespace semcc

#endif  // SEMCC_UTIL_CODING_H_
