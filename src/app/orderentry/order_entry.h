// The paper's running example (§2): a simplified order-entry application.
//
// Object schema (paper Figure 1):
//   DB.Items : Set<Item>                                (key: ItemNo)
//   Item     = < ItemNo, Price, QuantityOnHand, NextOrderNo, Orders >
//   Orders   : Set<Order>                               (key: OrderNo)
//   Order    = < OrderNo, CustomerNo, Quantity, Status >
//
// Item and Order are encapsulated types. Methods (paper §2.2):
//   Item.NewOrder(CustomerNo, Quantity) -> OrderNo
//   Item.ShipOrder(OrderNo)            — updates QuantityOnHand, marks shipped
//   Item.PayOrder(OrderNo)             — marks paid
//   Item.TotalPayment() -> Money       — Price*Quantity over paid orders;
//                                        *bypasses* Order encapsulation by
//                                        reading Status directly (footnote 4)
//   Order.ChangeStatus(event)          — adds "shipped"/"paid" to the event set
//   Order.TestStatus(event) -> Bool
//   Order.UnchangeStatus(event)        — semantic inverse of ChangeStatus,
//                                        used by compensation (§3)
//
// The compatibility matrices of Figures 2 and 3 are installed into the
// database's CompatibilityRegistry (see order_entry.cc for the Figure 2
// reconstruction notes — the scanned matrix is partly illegible and is
// rebuilt from the paper's prose constraints, documented in DESIGN.md).
#ifndef SEMCC_APP_ORDERENTRY_ORDER_ENTRY_H_
#define SEMCC_APP_ORDERENTRY_ORDER_ENTRY_H_

#include <string>
#include <vector>

#include "core/database.h"

namespace semcc {
namespace orderentry {

/// Order status events (stored as a bitmask event *set* — the paper's
/// ChangeStatus "does not remember the ordering in which events occurred").
inline constexpr int64_t kEventShippedBit = 1;
inline constexpr int64_t kEventPaidBit = 2;
inline constexpr const char* kShipped = "shipped";
inline constexpr const char* kPaid = "paid";

int64_t EventBit(const std::string& event);

/// Type ids created by Install().
struct OrderEntryTypes {
  TypeId item = kInvalidTypeId;
  TypeId order = kInvalidTypeId;
  TypeId items_set = kInvalidTypeId;
  TypeId orders_set = kInvalidTypeId;
  TypeId number = kInvalidTypeId;  // all numeric atoms share one atomic type
  Oid items = kInvalidOid;         // the database's Set<Item>
};

struct InstallOptions {
  /// Extension (not in the paper's Figure 2): refine ShipOrder/ShipOrder and
  /// PayOrder/PayOrder to commute when they address *different* OrderNos
  /// ("taking into account the actual input parameters", §3).
  bool parameter_refined_item_matrix = false;
  /// Register types, methods, and matrices but create no objects. Used when
  /// the object graph will be rebuilt by log replay (Database::RecoverFrom);
  /// resolve OrderEntryTypes::items afterwards via the "Items" named root.
  bool register_only = false;
};

/// Register the order-entry schema, methods, and compatibility matrices.
Result<OrderEntryTypes> Install(Database* db, InstallOptions opts = {});

/// Populate the database outside any transaction.
struct LoadSpec {
  int num_items = 16;
  int orders_per_item = 8;
  int64_t initial_qoh = 1'000'000;
  int64_t price_cents = 995;
  /// Fraction (0..1) of pre-loaded orders marked shipped / paid.
  double pre_shipped = 0.0;
  double pre_paid = 0.0;
  uint64_t seed = 7;
};

struct LoadedData {
  std::vector<Oid> item_oids;           // index = item position
  std::vector<int64_t> orders_per_item; // initial order count per item
};

Result<LoadedData> Load(Database* db, const OrderEntryTypes& types,
                        const LoadSpec& spec);

// --- the five transaction types of paper §2.3 -----------------------------
//
// Each returns a TxnManager::Body closure; run it with db->RunTransaction.
// `think_micros` sleeps between the two top-level actions, modeling the
// paper's long interactive transactions ("transactions tend to be longer in
// applications with complex operations on complex objects", §1.1) — this is
// what makes lock hold time, and thus the choice of protocol, matter.

/// T1: ship two orders for two different items (ShipOrder on the items).
TxnManager::Body T1_ShipTwoOrders(Oid item1, int64_t order1, Oid item2,
                                  int64_t order2, int64_t think_micros = 0);
/// T2: record payment of two orders for two different items.
TxnManager::Body T2_PayTwoOrders(Oid item1, int64_t order1, Oid item2,
                                 int64_t order2, int64_t think_micros = 0);
/// T3: check the shipment of two orders for two different items — invokes
/// TestStatus *directly on the Order objects* (bypasses Item encapsulation).
TxnManager::Body T3_CheckShipment(Oid item1, int64_t order1, Oid item2,
                                  int64_t order2, int64_t think_micros = 0);
/// T4: check the payment of two orders (bypassing, like T3).
TxnManager::Body T4_CheckPayment(Oid item1, int64_t order1, Oid item2,
                                 int64_t order2, int64_t think_micros = 0);
/// T5: compute the total payment for an item (TotalPayment on the item).
/// `repeat` > 1 scans the item that many times in one transaction; the
/// re-invocations reacquire locks the tree already holds, exercising the
/// lock manager's per-tree grant cache (fast-path reacquire).
TxnManager::Body T5_TotalPayment(Oid item, int repeat = 1);
/// T5 variant: one transaction that computes TotalPayment over *every* item.
/// Under plain locking the scan read-locks the whole item set, so it
/// conflicts with any in-flight updater; under `mvcc_reads` snapshot mode it
/// runs lock-free. Used by the read-mix benchmarks to expose the gap.
TxnManager::Body T5_TotalPaymentScan(std::vector<Oid> items, int repeat = 1);

/// Extra (exercises NewOrder; not one of the paper's five read/update mixes
/// but required to drive the NewOrder method and the set-insert path).
/// `order_no_hint` >= 0 passes a client-known lower bound on the OrderNo the
/// call will allocate (NextOrderNo is monotone, so any previously observed
/// order number + 1 is valid). With ProtocolOptions::keyrange_locks the lock
/// manager turns the hint into the key interval [hint, +inf), letting the
/// NewOrder lock pass ShipOrder/PayOrder locks on already-existing orders.
TxnManager::Body TN_EnterOrder(Oid item, int64_t customer_no,
                               int64_t quantity, int64_t order_no_hint = -1);

// --- non-transactional helpers (test assertions / state inspection) -------

Result<Oid> FindOrder(Database* db, Oid item, int64_t order_no);
Result<int64_t> ReadStatusRaw(Database* db, Oid order);
Result<int64_t> ReadQohRaw(Database* db, Oid item);

}  // namespace orderentry
}  // namespace semcc

#endif  // SEMCC_APP_ORDERENTRY_ORDER_ENTRY_H_
