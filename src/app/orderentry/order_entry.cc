#include "app/orderentry/order_entry.h"
#include <chrono>
#include <thread>

#include "adt/standard_adts.h"
#include "cc/compatibility.h"
#include "util/random.h"

namespace semcc {
namespace orderentry {

int64_t EventBit(const std::string& event) {
  if (event == kShipped) return kEventShippedBit;
  if (event == kPaid) return kEventPaidBit;
  return 0;
}

namespace {

// ---- method bodies ---------------------------------------------------------

Result<Value> NewOrderBody(TxnCtx& ctx, Oid self, const Args& args,
                           const OrderEntryTypes& t) {
  // args[2], when present, is an advisory lower bound on the OrderNo about
  // to be allocated — consumed only by the lock manager's key-interval
  // annotation (see InstallItemMatrix), never by the body itself.
  if (args.size() != 2 && args.size() != 3) {
    return Status::InvalidArgument("NewOrder(cust, qty[, order_no_hint])");
  }
  const int64_t customer = args[0].AsInt();
  const int64_t quantity = args[1].AsInt();
  SEMCC_ASSIGN_OR_RETURN(Oid next, ctx.Component(self, "NextOrderNo"));
  SEMCC_ASSIGN_OR_RETURN(Value cur, ctx.Get(next));
  const int64_t order_no = cur.AsInt() + 1;
  SEMCC_RETURN_NOT_OK(ctx.Put(next, Value(order_no)));

  SEMCC_ASSIGN_OR_RETURN(Oid ono_a, ctx.CreateAtomic(t.number, Value(order_no)));
  SEMCC_ASSIGN_OR_RETURN(Oid cust_a, ctx.CreateAtomic(t.number, Value(customer)));
  SEMCC_ASSIGN_OR_RETURN(Oid qty_a, ctx.CreateAtomic(t.number, Value(quantity)));
  SEMCC_ASSIGN_OR_RETURN(Oid status_a,
                         ctx.CreateAtomic(t.number, Value(int64_t{0})));
  SEMCC_ASSIGN_OR_RETURN(
      Oid order, ctx.CreateTuple(t.order, {{"OrderNo", ono_a},
                                           {"CustomerNo", cust_a},
                                           {"Quantity", qty_a},
                                           {"Status", status_a}}));
  SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
  SEMCC_RETURN_NOT_OK(ctx.SetInsert(orders, Value(order_no), order));
  return Value(order_no);
}

Status NewOrderInverse(TxnCtx& ctx, Oid self, const Args& /*args*/,
                       const Value& result) {
  // Compensate: take the order out again and destroy its objects.
  const int64_t order_no = result.AsInt();
  SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
  SEMCC_ASSIGN_OR_RETURN(Oid order, ctx.SetSelect(orders, Value(order_no)));
  SEMCC_RETURN_NOT_OK(ctx.SetRemove(orders, Value(order_no)));
  SEMCC_ASSIGN_OR_RETURN(auto components, ctx.store()->Components(order));
  for (const auto& [name, oid] : components) {
    (void)name;
    (void)ctx.store()->Destroy(oid);
  }
  return ctx.store()->Destroy(order);
}

Result<Value> ShipOrderBody(TxnCtx& ctx, Oid self, const Args& args) {
  if (args.size() != 1) return Status::InvalidArgument("ShipOrder(order_no)");
  SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
  SEMCC_ASSIGN_OR_RETURN(Oid order, ctx.SetSelect(orders, args[0]));
  // Record the shipment on the order, then update quantity-on-hand (this is
  // the action order of paper Figure 4).
  SEMCC_ASSIGN_OR_RETURN(Value done,
                         ctx.Invoke(order, "ChangeStatus", {Value(kShipped)}));
  (void)done;
  SEMCC_ASSIGN_OR_RETURN(Value qty, ctx.GetField(order, "Quantity"));
  SEMCC_ASSIGN_OR_RETURN(Value qoh, ctx.GetField(self, "QuantityOnHand"));
  SEMCC_RETURN_NOT_OK(
      ctx.PutField(self, "QuantityOnHand", Value(qoh.AsInt() - qty.AsInt())));
  return Value();
}

Status ShipOrderInverse(TxnCtx& ctx, Oid self, const Args& args,
                        const Value& /*result*/) {
  SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
  SEMCC_ASSIGN_OR_RETURN(Oid order, ctx.SetSelect(orders, args[0]));
  SEMCC_ASSIGN_OR_RETURN(Value qty, ctx.GetField(order, "Quantity"));
  SEMCC_ASSIGN_OR_RETURN(Value qoh, ctx.GetField(self, "QuantityOnHand"));
  SEMCC_RETURN_NOT_OK(
      ctx.PutField(self, "QuantityOnHand", Value(qoh.AsInt() + qty.AsInt())));
  auto r = ctx.Invoke(order, "UnchangeStatus", {Value(kShipped)});
  return r.ok() ? Status::OK() : r.status();
}

Result<Value> PayOrderBody(TxnCtx& ctx, Oid self, const Args& args) {
  if (args.size() != 1) return Status::InvalidArgument("PayOrder(order_no)");
  SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
  SEMCC_ASSIGN_OR_RETURN(Oid order, ctx.SetSelect(orders, args[0]));
  SEMCC_ASSIGN_OR_RETURN(Value done,
                         ctx.Invoke(order, "ChangeStatus", {Value(kPaid)}));
  (void)done;
  return Value();
}

Status PayOrderInverse(TxnCtx& ctx, Oid self, const Args& args,
                       const Value& /*result*/) {
  SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
  SEMCC_ASSIGN_OR_RETURN(Oid order, ctx.SetSelect(orders, args[0]));
  auto r = ctx.Invoke(order, "UnchangeStatus", {Value(kPaid)});
  return r.ok() ? Status::OK() : r.status();
}

Result<Value> TotalPaymentBody(TxnCtx& ctx, Oid self, const Args& args) {
  if (!args.empty()) return Status::InvalidArgument("TotalPayment()");
  SEMCC_ASSIGN_OR_RETURN(Value price, ctx.GetField(self, "Price"));
  SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
  SEMCC_ASSIGN_OR_RETURN(auto members, ctx.SetScan(orders));
  int64_t total = 0;
  for (const auto& [order_no, order] : members) {
    (void)order_no;
    // BYPASS (paper footnote 4): read the order's status component directly
    // instead of invoking Order.TestStatus — "for efficiency reasons, or
    // because TotalPayment was implemented before TestStatus was added".
    SEMCC_ASSIGN_OR_RETURN(Value status, ctx.GetField(order, "Status"));
    if ((status.AsInt() & kEventPaidBit) != 0) {
      SEMCC_ASSIGN_OR_RETURN(Value qty, ctx.GetField(order, "Quantity"));
      total += price.AsInt() * qty.AsInt();
    }
  }
  return Value(total);
}

Result<Value> ChangeStatusBody(TxnCtx& ctx, Oid self, const Args& args) {
  if (args.size() != 1) return Status::InvalidArgument("ChangeStatus(event)");
  const int64_t bit = EventBit(args[0].AsString());
  if (bit == 0) return Status::InvalidArgument("unknown event");
  // Add the event to the status event set (a set: no ordering remembered —
  // this is why ChangeStatus commutes with itself, Figure 3).
  SEMCC_ASSIGN_OR_RETURN(Oid status, ctx.Component(self, "Status"));
  SEMCC_ASSIGN_OR_RETURN(Value cur, ctx.Get(status));
  SEMCC_RETURN_NOT_OK(ctx.Put(status, Value(cur.AsInt() | bit)));
  return Value();
}

Status ChangeStatusInverse(TxnCtx& ctx, Oid self, const Args& args,
                           const Value& /*result*/) {
  // Semantic compensation: remove the event again — run as a subtransaction
  // under the same protocol (paper §3). A physical restore of the old status
  // byte would wipe out commuting updates committed by other transactions in
  // the meantime.
  auto r = ctx.Invoke(self, "UnchangeStatus", {args[0]});
  return r.ok() ? Status::OK() : r.status();
}

Result<Value> UnchangeStatusBody(TxnCtx& ctx, Oid self, const Args& args) {
  if (args.size() != 1) return Status::InvalidArgument("UnchangeStatus(event)");
  const int64_t bit = EventBit(args[0].AsString());
  if (bit == 0) return Status::InvalidArgument("unknown event");
  SEMCC_ASSIGN_OR_RETURN(Oid status, ctx.Component(self, "Status"));
  SEMCC_ASSIGN_OR_RETURN(Value cur, ctx.Get(status));
  SEMCC_RETURN_NOT_OK(ctx.Put(status, Value(cur.AsInt() & ~bit)));
  return Value();
}

Status UnchangeStatusInverse(TxnCtx& ctx, Oid self, const Args& args,
                             const Value& /*result*/) {
  auto r = ctx.Invoke(self, "ChangeStatus", {args[0]});
  return r.ok() ? Status::OK() : r.status();
}

Result<Value> TestStatusBody(TxnCtx& ctx, Oid self, const Args& args) {
  if (args.size() != 1) return Status::InvalidArgument("TestStatus(event)");
  const int64_t bit = EventBit(args[0].AsString());
  if (bit == 0) return Status::InvalidArgument("unknown event");
  SEMCC_ASSIGN_OR_RETURN(Value cur, ctx.GetField(self, "Status"));
  return Value((cur.AsInt() & bit) != 0);
}

// ---- compatibility matrices ------------------------------------------------

void InstallItemMatrix(Database* db, TypeId item, const InstallOptions& opts) {
  CompatibilityRegistry* c = db->compat();
  for (const char* m : {"NewOrder", "ShipOrder", "PayOrder", "TotalPayment"}) {
    c->DeclareMethod(item, m);
  }
  // Paper Figure 2 (reconstructed; see DESIGN.md §2):
  //                NewOrder  ShipOrder  PayOrder  TotalPayment
  //  NewOrder        ok       conflict   conflict     ok
  //  ShipOrder     conflict   conflict     ok         ok
  //  PayOrder      conflict     ok       conflict   conflict
  //  TotalPayment    ok         ok       conflict     ok
  c->Define(item, "NewOrder", "NewOrder", true);
  c->Define(item, "NewOrder", "ShipOrder", false);
  c->Define(item, "NewOrder", "PayOrder", false);
  c->Define(item, "NewOrder", "TotalPayment", true);
  if (opts.parameter_refined_item_matrix) {
    auto different_orders = [](const Args& a, const Args& b) {
      return !a.empty() && !b.empty() && !(a[0] == b[0]);
    };
    c->DefinePredicate(item, "ShipOrder", "ShipOrder", different_orders);
    c->DefinePredicate(item, "PayOrder", "PayOrder", different_orders);
  } else {
    c->Define(item, "ShipOrder", "ShipOrder", false);
    c->Define(item, "PayOrder", "PayOrder", false);
  }
  // "We assume that the ordering of shipment and payment is irrelevant ...
  // hence ShipOrder and PayOrder are compatible methods" (paper §2.2).
  c->Define(item, "ShipOrder", "PayOrder", true);
  c->Define(item, "ShipOrder", "TotalPayment", true);
  c->Define(item, "PayOrder", "TotalPayment", false);
  c->Define(item, "TotalPayment", "TotalPayment", true);
  if (opts.parameter_refined_item_matrix) {
    // Non-exact key footprints over the item's Orders set, keyed by OrderNo.
    // exact=false: each method also touches non-keyed state (NextOrderNo,
    // QuantityOnHand, Price), so the footprints must NOT derive matrix cells
    // — the hand-written Figure 2 cells above stay authoritative. They exist
    // purely so that with ProtocolOptions::keyrange_locks each invocation's
    // lock carries an OrderNo interval, and CONFLICT cells relax when two
    // intervals are provably disjoint: NewOrder only ever writes order
    // numbers >= its hint (args[2] is a lower bound — NextOrderNo is
    // monotone and NewOrderInverse never decrements it), while ShipOrder /
    // PayOrder address exactly the existing order args[0].
    MethodSpec new_order;
    new_order.writes = KeyRef::LowerBound(2);
    new_order.size_delta = +1;
    new_order.exact = false;
    c->DefineMethodSpec(item, "NewOrder", new_order);
    MethodSpec point_update;
    point_update.reads = KeyRef::Point(0);
    point_update.writes = KeyRef::Point(0);
    point_update.exact = false;
    c->DefineMethodSpec(item, "ShipOrder", point_update);
    c->DefineMethodSpec(item, "PayOrder", point_update);
    MethodSpec scan_all;
    scan_all.reads = KeyRef::All();
    scan_all.exact = false;
    c->DefineMethodSpec(item, "TotalPayment", scan_all);
  }
}

void InstallOrderMatrix(Database* db, TypeId order) {
  CompatibilityRegistry* c = db->compat();
  for (const char* m : {"ChangeStatus", "TestStatus", "UnchangeStatus"}) {
    c->DeclareMethod(order, m);
  }
  auto different_events = [](const Args& a, const Args& b) {
    return !a.empty() && !b.empty() && !(a[0] == b[0]);
  };
  // Paper Figure 3: ChangeStatus commutes with itself ("adds another event
  // to a set of events"); ChangeStatus(e1) vs TestStatus(e2) conflict iff
  // e1 == e2; TestStatus pairs always commute.
  c->Define(order, "ChangeStatus", "ChangeStatus", true);
  c->DefinePredicate(order, "ChangeStatus", "TestStatus", different_events);
  c->Define(order, "TestStatus", "TestStatus", true);
  // UnchangeStatus (compensation) behaves like ChangeStatus.
  c->Define(order, "UnchangeStatus", "UnchangeStatus", true);
  c->Define(order, "UnchangeStatus", "ChangeStatus", true);
  c->DefinePredicate(order, "UnchangeStatus", "TestStatus", different_events);
}

}  // namespace

// ---- installation -----------------------------------------------------------

Result<OrderEntryTypes> Install(Database* db, InstallOptions opts) {
  OrderEntryTypes t;
  Schema* s = db->schema();
  SEMCC_ASSIGN_OR_RETURN(t.number, s->DefineAtomicType("Number"));
  SEMCC_ASSIGN_OR_RETURN(
      t.order, s->DefineTupleType("Order",
                                  {{"OrderNo", t.number},
                                   {"CustomerNo", t.number},
                                   {"Quantity", t.number},
                                   {"Status", t.number}},
                                  /*encapsulated=*/true));
  SEMCC_ASSIGN_OR_RETURN(t.orders_set,
                         s->DefineSetType("Orders", t.order, "OrderNo"));
  // OrderNo-keyed footprints for the generic set operations: derives the
  // Orders matrix cells from the footprint algebra and keys every set-level
  // lock (keyrange_locks) by the OrderNo it actually touches.
  adt::InstallKeyedSetSpecs(db, t.orders_set);
  SEMCC_ASSIGN_OR_RETURN(
      t.item, s->DefineTupleType("Item",
                                 {{"ItemNo", t.number},
                                  {"Price", t.number},
                                  {"QuantityOnHand", t.number},
                                  {"NextOrderNo", t.number},
                                  {"Orders", t.orders_set}},
                                 /*encapsulated=*/true));
  SEMCC_ASSIGN_OR_RETURN(t.items_set, s->DefineSetType("Items", t.item, "ItemNo"));
  if (!opts.register_only) {
    SEMCC_ASSIGN_OR_RETURN(t.items, db->store()->CreateSet(t.items_set));
    SEMCC_RETURN_NOT_OK(db->SetNamedRoot("Items", t.items));
  }

  OrderEntryTypes bound = t;
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.item, "NewOrder", /*read_only=*/false,
       [bound](TxnCtx& ctx, Oid self, const Args& args) {
         return NewOrderBody(ctx, self, args, bound);
       },
       NewOrderInverse}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.item, "ShipOrder", false, ShipOrderBody, ShipOrderInverse}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.item, "PayOrder", false, PayOrderBody, PayOrderInverse}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.item, "TotalPayment", true, TotalPaymentBody, nullptr}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {t.order, "ChangeStatus", false, ChangeStatusBody, ChangeStatusInverse}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod({t.order, "UnchangeStatus", false,
                                          UnchangeStatusBody,
                                          UnchangeStatusInverse}));
  SEMCC_RETURN_NOT_OK(
      db->RegisterMethod({t.order, "TestStatus", true, TestStatusBody, nullptr}));

  InstallItemMatrix(db, t.item, opts);
  InstallOrderMatrix(db, t.order);
  return t;
}

Result<LoadedData> Load(Database* db, const OrderEntryTypes& types,
                        const LoadSpec& spec) {
  LoadedData data;
  ObjectStore* store = db->store();
  Random rng(spec.seed);
  for (int i = 0; i < spec.num_items; ++i) {
    SEMCC_ASSIGN_OR_RETURN(Oid item_no,
                           store->CreateAtomic(types.number, Value(int64_t{i + 1})));
    SEMCC_ASSIGN_OR_RETURN(
        Oid price, store->CreateAtomic(types.number, Value(spec.price_cents)));
    SEMCC_ASSIGN_OR_RETURN(
        Oid qoh, store->CreateAtomic(types.number, Value(spec.initial_qoh)));
    SEMCC_ASSIGN_OR_RETURN(
        Oid next, store->CreateAtomic(types.number,
                                      Value(int64_t{spec.orders_per_item})));
    SEMCC_ASSIGN_OR_RETURN(Oid orders, store->CreateSet(types.orders_set));
    for (int o = 1; o <= spec.orders_per_item; ++o) {
      int64_t status = 0;
      if (rng.Bernoulli(spec.pre_shipped)) status |= kEventShippedBit;
      if (rng.Bernoulli(spec.pre_paid)) status |= kEventPaidBit;
      SEMCC_ASSIGN_OR_RETURN(
          Oid ono, store->CreateAtomic(types.number, Value(int64_t{o})));
      SEMCC_ASSIGN_OR_RETURN(
          Oid cust, store->CreateAtomic(
                        types.number,
                        Value(static_cast<int64_t>(rng.Uniform(1000)) + 1)));
      SEMCC_ASSIGN_OR_RETURN(
          Oid qty, store->CreateAtomic(
                       types.number,
                       Value(static_cast<int64_t>(rng.Uniform(9)) + 1)));
      SEMCC_ASSIGN_OR_RETURN(Oid st,
                             store->CreateAtomic(types.number, Value(status)));
      SEMCC_ASSIGN_OR_RETURN(Oid order,
                             store->CreateTuple(types.order, {{"OrderNo", ono},
                                                              {"CustomerNo", cust},
                                                              {"Quantity", qty},
                                                              {"Status", st}}));
      SEMCC_RETURN_NOT_OK(store->SetInsert(orders, Value(int64_t{o}), order));
    }
    SEMCC_ASSIGN_OR_RETURN(
        Oid item, store->CreateTuple(types.item, {{"ItemNo", item_no},
                                                  {"Price", price},
                                                  {"QuantityOnHand", qoh},
                                                  {"NextOrderNo", next},
                                                  {"Orders", orders}}));
    SEMCC_RETURN_NOT_OK(
        store->SetInsert(types.items, Value(int64_t{i + 1}), item));
    data.item_oids.push_back(item);
    data.orders_per_item.push_back(spec.orders_per_item);
  }
  return data;
}

// ---- transaction bodies ------------------------------------------------------

namespace {
void Think(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}
}  // namespace

TxnManager::Body T1_ShipTwoOrders(Oid item1, int64_t order1, Oid item2,
                                  int64_t order2, int64_t think_micros) {
  return [=](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a,
                           ctx.Invoke(item1, "ShipOrder", {Value(order1)}));
    (void)a;
    Think(think_micros);
    SEMCC_ASSIGN_OR_RETURN(Value b,
                           ctx.Invoke(item2, "ShipOrder", {Value(order2)}));
    (void)b;
    return Value();
  };
}

TxnManager::Body T2_PayTwoOrders(Oid item1, int64_t order1, Oid item2,
                                 int64_t order2, int64_t think_micros) {
  return [=](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value a,
                           ctx.Invoke(item1, "PayOrder", {Value(order1)}));
    (void)a;
    Think(think_micros);
    SEMCC_ASSIGN_OR_RETURN(Value b,
                           ctx.Invoke(item2, "PayOrder", {Value(order2)}));
    (void)b;
    return Value();
  };
}

namespace {
TxnManager::Body CheckTwoOrders(Oid item1, int64_t order1, Oid item2,
                                int64_t order2, const char* event,
                                int64_t think_micros) {
  std::string ev(event);
  return [=](TxnCtx& ctx) -> Result<Value> {
    // Bypass Item encapsulation: resolve the Order subobjects with generic
    // Select operations and invoke TestStatus on them directly (paper §2.3:
    // "invoke TestStatus on the orders").
    SEMCC_ASSIGN_OR_RETURN(Oid orders1, ctx.Component(item1, "Orders"));
    SEMCC_ASSIGN_OR_RETURN(Oid o1, ctx.SetSelect(orders1, Value(order1)));
    SEMCC_ASSIGN_OR_RETURN(Value r1, ctx.Invoke(o1, "TestStatus", {Value(ev)}));
    Think(think_micros);
    SEMCC_ASSIGN_OR_RETURN(Oid orders2, ctx.Component(item2, "Orders"));
    SEMCC_ASSIGN_OR_RETURN(Oid o2, ctx.SetSelect(orders2, Value(order2)));
    SEMCC_ASSIGN_OR_RETURN(Value r2, ctx.Invoke(o2, "TestStatus", {Value(ev)}));
    return Value(static_cast<int64_t>((r1.AsBool() ? 1 : 0) |
                                      (r2.AsBool() ? 2 : 0)));
  };
}
}  // namespace

TxnManager::Body T3_CheckShipment(Oid item1, int64_t order1, Oid item2,
                                  int64_t order2, int64_t think_micros) {
  return CheckTwoOrders(item1, order1, item2, order2, kShipped, think_micros);
}

TxnManager::Body T4_CheckPayment(Oid item1, int64_t order1, Oid item2,
                                 int64_t order2, int64_t think_micros) {
  return CheckTwoOrders(item1, order1, item2, order2, kPaid, think_micros);
}

TxnManager::Body T5_TotalPayment(Oid item, int repeat) {
  return [=](TxnCtx& ctx) -> Result<Value> {
    Result<Value> r = ctx.Invoke(item, "TotalPayment", {});
    for (int i = 1; r.ok() && i < repeat; ++i) {
      r = ctx.Invoke(item, "TotalPayment", {});
    }
    return r;
  };
}

TxnManager::Body T5_TotalPaymentScan(std::vector<Oid> items, int repeat) {
  return [items = std::move(items), repeat](TxnCtx& ctx) -> Result<Value> {
    int64_t total = 0;
    for (int i = 0; i < repeat; ++i) {
      for (Oid item : items) {
        SEMCC_ASSIGN_OR_RETURN(Value v, ctx.Invoke(item, "TotalPayment", {}));
        if (i == 0) total += v.AsInt();
      }
    }
    return Value(total);
  };
}

TxnManager::Body TN_EnterOrder(Oid item, int64_t customer_no, int64_t quantity,
                               int64_t order_no_hint) {
  return [=](TxnCtx& ctx) -> Result<Value> {
    if (order_no_hint >= 0) {
      return ctx.Invoke(item, "NewOrder", {Value(customer_no), Value(quantity),
                                           Value(order_no_hint)});
    }
    return ctx.Invoke(item, "NewOrder", {Value(customer_no), Value(quantity)});
  };
}

// ---- raw helpers -------------------------------------------------------------

Result<Oid> FindOrder(Database* db, Oid item, int64_t order_no) {
  SEMCC_ASSIGN_OR_RETURN(Oid orders, db->store()->Component(item, "Orders"));
  return db->store()->SetSelect(orders, Value(order_no));
}

Result<int64_t> ReadStatusRaw(Database* db, Oid order) {
  SEMCC_ASSIGN_OR_RETURN(Oid status, db->store()->Component(order, "Status"));
  SEMCC_ASSIGN_OR_RETURN(Value v, db->store()->Get(status));
  return v.AsInt();
}

Result<int64_t> ReadQohRaw(Database* db, Oid item) {
  SEMCC_ASSIGN_OR_RETURN(Oid qoh,
                         db->store()->Component(item, "QuantityOnHand"));
  SEMCC_ASSIGN_OR_RETURN(Value v, db->store()->Get(qoh));
  return v.AsInt();
}

}  // namespace orderentry
}  // namespace semcc
