#include "app/orderentry/workload.h"

#include <thread>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace semcc {
namespace orderentry {

OrderEntryWorkload::OrderEntryWorkload(Database* db,
                                       const OrderEntryTypes& types,
                                       WorkloadOptions opts)
    : db_(db), types_(types), opts_(opts) {}

Status OrderEntryWorkload::Setup() {
  SEMCC_ASSIGN_OR_RETURN(data_, Load(db_, types_, opts_.load));
  max_order_.clear();
  for (int64_t n : data_.orders_per_item) {
    max_order_.push_back(std::make_unique<std::atomic<int64_t>>(n));
  }
  return Status::OK();
}

void OrderEntryWorkload::AdoptData(const OrderEntryWorkload& other) {
  data_ = other.data_;
  max_order_.clear();
  for (const auto& m : other.max_order_) {
    max_order_.push_back(std::make_unique<std::atomic<int64_t>>(
        m->load(std::memory_order_relaxed)));
  }
}

std::unique_ptr<WorkerState> OrderEntryWorkload::MakeWorkerState(
    int worker_index) const {
  return std::make_unique<WorkerState>(
      opts_.seed * 1315423911ULL + static_cast<uint64_t>(worker_index),
      data_.item_oids.size(), opts_.zipf_theta);
}

OrderEntryWorkload::TxnKind OrderEntryWorkload::PickKind(Random* rng) const {
  const int roll = static_cast<int>(rng->Uniform(100));
  int acc = opts_.pct_t1;
  if (roll < acc) return TxnKind::kT1;
  acc += opts_.pct_t2;
  if (roll < acc) return TxnKind::kT2;
  acc += opts_.pct_t3;
  if (roll < acc) return TxnKind::kT3;
  acc += opts_.pct_t4;
  if (roll < acc) return TxnKind::kT4;
  acc += opts_.pct_new_order;
  if (roll < acc) return TxnKind::kNewOrder;
  return TxnKind::kT5;
}

Oid OrderEntryWorkload::PickItem(WorkerState* ws, size_t* index_out) const {
  const size_t idx = static_cast<size_t>(ws->zipf.Next());
  if (index_out != nullptr) *index_out = idx;
  return data_.item_oids[idx];
}

int64_t OrderEntryWorkload::PickOrder(WorkerState* ws,
                                      size_t item_index) const {
  const int64_t max = max_order_[item_index]->load(std::memory_order_relaxed);
  if (max <= 0) return 1;
  return static_cast<int64_t>(ws->rng.Uniform(static_cast<uint64_t>(max))) + 1;
}

Status OrderEntryWorkload::RunOne(WorkerState* ws) {
  const TxnKind kind = PickKind(&ws->rng);
  const bool is_reader = kind == TxnKind::kT3 || kind == TxnKind::kT4 ||
                         kind == TxnKind::kT5;
  size_t i1 = 0;
  size_t i2 = 0;
  Oid item1 = PickItem(ws, &i1);
  Oid item2 = PickItem(ws, &i2);
  // T1-T4 operate on two *different* items (paper §2.3).
  for (int guard = 0; i2 == i1 && guard < 16 && data_.item_oids.size() > 1;
       ++guard) {
    item2 = PickItem(ws, &i2);
  }
  // Readers go through RunReadTransaction when snapshot_readers is set (a
  // lock-free snapshot with mvcc_reads, the plain locking path without).
  auto run_reader = [this](const std::string& name,
                           const TxnManager::Body& body) {
    return opts_.snapshot_readers
               ? db_->RunReadTransaction(name, body, opts_.max_retries)
               : db_->RunTransaction(name, body, opts_.max_retries);
  };
  const uint64_t waits_before = LockManager::ThreadRootWaits();
  const int64_t reader_think = opts_.reader_think_micros >= 0
                                   ? opts_.reader_think_micros
                                   : opts_.think_micros;
  Result<Value> r = Value();
  switch (kind) {
    case TxnKind::kT1:
      r = db_->RunTransaction(
          "T1",
          T1_ShipTwoOrders(item1, PickOrder(ws, i1), item2, PickOrder(ws, i2),
                           opts_.think_micros),
          opts_.max_retries);
      break;
    case TxnKind::kT2:
      r = db_->RunTransaction(
          "T2",
          T2_PayTwoOrders(item1, PickOrder(ws, i1), item2, PickOrder(ws, i2),
                          opts_.think_micros),
          opts_.max_retries);
      break;
    case TxnKind::kT3:
      r = run_reader("T3", T3_CheckShipment(item1, PickOrder(ws, i1), item2,
                                            PickOrder(ws, i2), reader_think));
      break;
    case TxnKind::kT4:
      r = run_reader("T4", T4_CheckPayment(item1, PickOrder(ws, i1), item2,
                                           PickOrder(ws, i2), reader_think));
      break;
    case TxnKind::kT5: {
      const int repeat = opts_.t5_double_scan ? 2 : 1;
      r = opts_.t5_scan_all
              ? run_reader("T5", T5_TotalPaymentScan(data_.item_oids, repeat))
              : run_reader("T5", T5_TotalPayment(item1, repeat));
      break;
    }
    case TxnKind::kNewOrder: {
      const int64_t customer = static_cast<int64_t>(ws->rng.Uniform(1000)) + 1;
      const int64_t qty = static_cast<int64_t>(ws->rng.Uniform(9)) + 1;
      // Lower bound on the OrderNo this call will allocate: NextOrderNo is
      // monotone, so the highest order number any transaction has observed
      // committed, plus one, is always safe. Lets keyrange_locks prove the
      // NewOrder disjoint from Ship/Pay locks on existing orders.
      const int64_t hint =
          max_order_[i1]->load(std::memory_order_relaxed) + 1;
      r = db_->RunTransaction("TN", TN_EnterOrder(item1, customer, qty, hint),
                              opts_.max_retries);
      if (r.ok()) {
        // Publish the new order number so later transactions can pick it.
        const int64_t newly = r.ValueOrDie().AsInt();
        std::atomic<int64_t>& slot = *max_order_[i1];
        int64_t cur = slot.load(std::memory_order_relaxed);
        while (cur < newly && !slot.compare_exchange_weak(
                                  cur, newly, std::memory_order_relaxed)) {
        }
      }
      break;
    }
  }
  const uint64_t waits = LockManager::ThreadRootWaits() - waits_before;
  if (is_reader) {
    ws->reader_root_waits += waits;
  } else {
    ws->writer_root_waits += waits;
  }
  if (r.ok()) {
    ws->committed++;
    if (is_reader) ws->read_committed++;
    return Status::OK();
  }
  ws->failed++;
  if (is_reader) ws->read_failed++;
  return r.status();
}

OrderEntryWorkload::RunResult OrderEntryWorkload::Run(int threads,
                                                      int txns_per_thread) {
  RunResult result;
  std::vector<std::thread> workers;
  std::vector<std::unique_ptr<WorkerState>> states;
  states.reserve(static_cast<size_t>(threads));
  for (int w = 0; w < threads; ++w) states.push_back(MakeWorkerState(w));
  StopWatch sw;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([this, &states, w, txns_per_thread]() {
      WorkerState* ws = states[static_cast<size_t>(w)].get();
      for (int i = 0; i < txns_per_thread; ++i) {
        Status st = RunOne(ws);
        if (!st.ok() && !st.IsDeadlock() && !st.IsTimedOut() &&
            !st.IsAborted()) {
          SEMCC_LOG(Warn) << "workload txn failed: " << st.ToString();
        }
      }
    });
  }
  for (std::thread& th : workers) th.join();
  result.seconds = sw.ElapsedSeconds();
  for (const auto& ws : states) {
    result.committed += ws->committed;
    result.failed += ws->failed;
    result.read_committed += ws->read_committed;
    result.read_failed += ws->read_failed;
    result.reader_root_waits += ws->reader_root_waits;
    result.writer_root_waits += ws->writer_root_waits;
  }
  result.write_committed = result.committed - result.read_committed;
  if (result.seconds > 0) {
    result.throughput_tps =
        static_cast<double>(result.committed) / result.seconds;
    result.read_tps =
        static_cast<double>(result.read_committed) / result.seconds;
    result.write_tps =
        static_cast<double>(result.write_committed) / result.seconds;
  }
  return result;
}

Result<int64_t> OrderEntryWorkload::TotalPaymentAllItems() {
  int64_t total = 0;
  for (Oid item : data_.item_oids) {
    SEMCC_ASSIGN_OR_RETURN(Value v,
                           db_->RunTransaction("T5", T5_TotalPayment(item)));
    total += v.AsInt();
  }
  return total;
}

}  // namespace orderentry
}  // namespace semcc
