// Scripted reproductions of the paper's execution scenarios (Figures 4-7).
//
// Each scenario sets up a fresh database under a chosen protocol with the
// paper's two items (i1, i2), each holding order number 1 (the paper's o1
// and o2), and provides the scripted hooks (ScriptedSchedule events) that
// force the exact interleavings of the figures. Scenario runners are shared
// by the integration tests and the figure-reproduction benches.
#ifndef SEMCC_APP_ORDERENTRY_SCENARIO_H_
#define SEMCC_APP_ORDERENTRY_SCENARIO_H_

#include <memory>
#include <string>

#include "app/orderentry/order_entry.h"
#include "util/sync.h"

namespace semcc {
namespace orderentry {

/// \brief Fresh database + the paper's standing objects.
struct PaperScenario {
  std::unique_ptr<Database> db;
  OrderEntryTypes types;
  Oid i1 = kInvalidOid;  ///< item 1
  Oid i2 = kInvalidOid;  ///< item 2
  Oid o1 = kInvalidOid;  ///< order #1 of item 1 (the paper's o1)
  Oid o2 = kInvalidOid;  ///< order #1 of item 2 (the paper's o2)
  int64_t ono1 = 1;
  int64_t ono2 = 1;
  /// Shared schedule for scripting thread interleavings.
  ScriptedSchedule schedule;
};

/// Build the scenario database. Also registers the scenario-only method
/// `Item.ShipOrderHold(order_no)`: identical to ShipOrder (ChangeStatus
/// first, then the QuantityOnHand update) except that it parks between the
/// two steps until the schedule event "release_ship" fires — this opens the
/// Figure 7 window in which ChangeStatus(o1, shipped) is committed while
/// ShipOrder(i1, o1) is still active. Its compatibility row equals
/// ShipOrder's.
Result<std::unique_ptr<PaperScenario>> MakePaperScenario(
    const ProtocolOptions& protocol);

/// Outcome of a two-transaction scripted run.
struct ScenarioOutcome {
  bool t_left_committed = false;
  bool t_right_committed = false;
  /// Did the right-hand transaction finish its probe action before the
  /// left-hand transaction committed? (The concurrency claim of each figure.)
  bool right_overlapped_left = false;
  std::string trace;  ///< printable transaction trees
  std::string note;
};

/// Figure 4: T1 (ship o1@i1, o2@i2) concurrent with T2 (pay o1@i1, o2@i2).
/// The schedule forces T2's PayOrder(i1, o1) to run between T1's two
/// ShipOrder actions.
ScenarioOutcome RunFig4(PaperScenario* s);

/// Figure 5: T1 (ship o1@i1, o2@i2) with T3 checking shipment *directly on
/// the Order objects* between T1's two actions. Under the paper's protocol
/// T3 must block until T1 commits; the §3 protocol (retain_locks=false)
/// lets it through and produces a non-serializable history.
ScenarioOutcome RunFig5(PaperScenario* s);

/// Figure 6 (Case 1): after T1 completed ShipOrder(i1, o1) (and is busy with
/// ShipOrder(i2, o2)), T4 checks the *payment* of o1 — conflicting at the
/// leaf level with the retained Put(o1.Status) but relieved by the committed
/// commuting ancestor pair (ChangeStatus(o1, shipped), TestStatus(o1, paid)).
ScenarioOutcome RunFig6(PaperScenario* s);

/// Figure 7 (Case 2): T1 is parked inside ShipOrderHold(i1, o1) with
/// ChangeStatus(o1, shipped) committed; T5 runs TotalPayment(i1), whose
/// bypassing Get(o1.Status) must wait for the ShipOrder subtransaction (not
/// for T1's commit).
ScenarioOutcome RunFig7(PaperScenario* s);

}  // namespace orderentry
}  // namespace semcc

#endif  // SEMCC_APP_ORDERENTRY_SCENARIO_H_
