#include "app/orderentry/scenario.h"

#include <chrono>
#include <thread>

#include "txn/history.h"
#include "util/logging.h"

namespace semcc {
namespace orderentry {

using std::chrono::milliseconds;

namespace {

Status ShipLikeInverse(TxnCtx& ctx, Oid self, const Args& args) {
  SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
  SEMCC_ASSIGN_OR_RETURN(Oid order, ctx.SetSelect(orders, args[0]));
  SEMCC_ASSIGN_OR_RETURN(Value qty, ctx.GetField(order, "Quantity"));
  SEMCC_ASSIGN_OR_RETURN(Value qoh, ctx.GetField(self, "QuantityOnHand"));
  SEMCC_RETURN_NOT_OK(
      ctx.PutField(self, "QuantityOnHand", Value(qoh.AsInt() + qty.AsInt())));
  auto r = ctx.Invoke(order, "UnchangeStatus", {Value(kShipped)});
  return r.ok() ? Status::OK() : r.status();
}

// Deterministic overlap verdict derived from the history's logical clock.
// `right` overlapped `left` iff right's first top-level action completed
// before left's root did. The commit path stamps the root's end_seq before
// ReleaseTree wakes any waiter, so an action that had to wait for left's
// locks always carries a strictly later end_seq — unlike a wall-clock
// "has left committed yet?" flag, which races with the lock release that
// happens inside left's commit.
bool RightOverlappedLeft(Database* db, const std::string& left_name,
                         const std::string& right_name) {
  uint64_t left_end = 0;
  uint64_t right_probe_end = 0;
  for (const TxnRecord& txn : db->history()->Snapshot()) {
    if (txn.name == left_name) {
      for (const ActionRecord& a : txn.actions) {
        if (a.parent_id == a.id) left_end = a.end_seq;
      }
    } else if (txn.name == right_name) {
      for (const ActionRecord& a : txn.actions) {
        if (a.depth == 1) {  // actions are in creation order: first probe
          right_probe_end = a.end_seq;
          break;
        }
      }
    }
  }
  return left_end != 0 && right_probe_end != 0 && right_probe_end < left_end;
}

std::string CollectTrace(Database* db) {
  std::string out;
  for (const TxnRecord& txn : db->history()->Snapshot()) {
    out += "-- " + txn.name + " (T" + std::to_string(txn.id) + ", " +
           (txn.committed ? "committed" : "aborted") + ")\n";
    out += FormatTxnTree(txn);
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<PaperScenario>> MakePaperScenario(
    const ProtocolOptions& protocol) {
  auto s = std::make_unique<PaperScenario>();
  DatabaseOptions options;
  options.protocol = protocol;
  // Keep scenario waits snappy: a wedged schedule should fail fast in tests.
  options.protocol.wait_timeout = std::chrono::milliseconds(5000);
  s->db = std::make_unique<Database>(options);
  SEMCC_ASSIGN_OR_RETURN(s->types, Install(s->db.get()));

  LoadSpec spec;
  spec.num_items = 2;
  spec.orders_per_item = 2;
  SEMCC_ASSIGN_OR_RETURN(LoadedData data, Load(s->db.get(), s->types, spec));
  s->i1 = data.item_oids[0];
  s->i2 = data.item_oids[1];
  SEMCC_ASSIGN_OR_RETURN(s->o1, FindOrder(s->db.get(), s->i1, s->ono1));
  SEMCC_ASSIGN_OR_RETURN(s->o2, FindOrder(s->db.get(), s->i2, s->ono2));

  // Scenario-only method with a scripted hold between ChangeStatus and the
  // QuantityOnHand update (the Figure 7 window).
  ScriptedSchedule* sched = &s->schedule;
  SEMCC_RETURN_NOT_OK(s->db->RegisterMethod(
      {s->types.item, "ShipOrderHold", /*read_only=*/false,
       [sched](TxnCtx& ctx, Oid self, const Args& args) -> Result<Value> {
         SEMCC_ASSIGN_OR_RETURN(Oid orders, ctx.Component(self, "Orders"));
         SEMCC_ASSIGN_OR_RETURN(Oid order, ctx.SetSelect(orders, args[0]));
         SEMCC_ASSIGN_OR_RETURN(
             Value done, ctx.Invoke(order, "ChangeStatus", {Value(kShipped)}));
         (void)done;
         sched->Signal("ship.cs.done");
         sched->WaitFor("release_ship", milliseconds(3000));
         SEMCC_ASSIGN_OR_RETURN(Value qty, ctx.GetField(order, "Quantity"));
         SEMCC_ASSIGN_OR_RETURN(Value qoh,
                                ctx.GetField(self, "QuantityOnHand"));
         SEMCC_RETURN_NOT_OK(ctx.PutField(self, "QuantityOnHand",
                                          Value(qoh.AsInt() - qty.AsInt())));
         return Value();
       },
       [](TxnCtx& ctx, Oid self, const Args& args, const Value&) {
         return ShipLikeInverse(ctx, self, args);
       }}));
  // Same compatibility row as ShipOrder (Figure 2).
  s->db->compat()->Define(s->types.item, "ShipOrderHold", "PayOrder", true);
  s->db->compat()->Define(s->types.item, "ShipOrderHold", "TotalPayment", true);
  return s;
}

// --- Figure 4 ---------------------------------------------------------------

ScenarioOutcome RunFig4(PaperScenario* s) {
  ScenarioOutcome out;
  Database* db = s->db.get();
  ScriptedSchedule& sched = s->schedule;

  std::thread t1([&]() {
    auto r = db->RunTransactionOnce("T1", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a,
                             ctx.Invoke(s->i1, "ShipOrder", {Value(s->ono1)}));
      (void)a;
      sched.Signal("t1.a.done");
      // Give T2 a window; don't hang forever under blocking protocols.
      sched.WaitFor("t2.a.done", milliseconds(300));
      return ctx.Invoke(s->i2, "ShipOrder", {Value(s->ono2)});
    });
    out.t_left_committed = r.ok();
  });
  std::thread t2([&]() {
    sched.WaitFor("t1.a.done");
    auto r = db->RunTransactionOnce("T2", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a,
                             ctx.Invoke(s->i1, "PayOrder", {Value(s->ono1)}));
      (void)a;
      sched.Signal("t2.a.done");
      return ctx.Invoke(s->i2, "PayOrder", {Value(s->ono2)});
    });
    out.t_right_committed = r.ok();
  });
  t1.join();
  t2.join();
  out.right_overlapped_left = RightOverlappedLeft(db, "T1", "T2");
  out.trace = CollectTrace(db);
  out.note = db->locks()->stats().ToString();
  return out;
}

// --- Figure 5 ---------------------------------------------------------------

ScenarioOutcome RunFig5(PaperScenario* s) {
  ScenarioOutcome out;
  Database* db = s->db.get();
  ScriptedSchedule& sched = s->schedule;

  int64_t t3_saw = -1;
  std::thread t1([&]() {
    auto r = db->RunTransactionOnce("T1", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a,
                             ctx.Invoke(s->i1, "ShipOrder", {Value(s->ono1)}));
      (void)a;
      sched.Signal("t1.a.done");
      sched.WaitFor("t3.done", milliseconds(500));
      return ctx.Invoke(s->i2, "ShipOrder", {Value(s->ono2)});
    });
    out.t_left_committed = r.ok();
  });
  std::thread t3([&]() {
    sched.WaitFor("t1.a.done");
    auto r = db->RunTransactionOnce("T3", [&](TxnCtx& ctx) -> Result<Value> {
      // Bypass: invoke TestStatus directly on the Order implementation
      // objects of the encapsulated items (paper Figure 5).
      SEMCC_ASSIGN_OR_RETURN(Value a,
                             ctx.Invoke(s->o1, "TestStatus", {Value(kShipped)}));
      SEMCC_ASSIGN_OR_RETURN(Value b,
                             ctx.Invoke(s->o2, "TestStatus", {Value(kShipped)}));
      return Value(static_cast<int64_t>((a.AsBool() ? 1 : 0) |
                                        (b.AsBool() ? 2 : 0)));
    });
    out.t_right_committed = r.ok();
    if (r.ok()) t3_saw = r.ValueOrDie().AsInt();
    sched.Signal("t3.done");
  });
  t1.join();
  t3.join();
  out.right_overlapped_left = RightOverlappedLeft(db, "T1", "T3");
  out.trace = CollectTrace(db);
  out.note = "T3 observed (bit1=o1 shipped, bit2=o2 shipped): " +
             std::to_string(t3_saw) + "; " + db->locks()->stats().ToString();
  return out;
}

// --- Figure 6 (Case 1) --------------------------------------------------------

ScenarioOutcome RunFig6(PaperScenario* s) {
  ScenarioOutcome out;
  Database* db = s->db.get();
  ScriptedSchedule& sched = s->schedule;

  std::thread t1([&]() {
    auto r = db->RunTransactionOnce("T1", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a,
                             ctx.Invoke(s->i1, "ShipOrder", {Value(s->ono1)}));
      (void)a;
      sched.Signal("t1.a.done");
      // T1 is "currently executing ShipOrder(i2, o2)" while T4 runs.
      sched.WaitFor("t4.done", milliseconds(500));
      return ctx.Invoke(s->i2, "ShipOrder", {Value(s->ono2)});
    });
    out.t_left_committed = r.ok();
  });
  std::thread t4([&]() {
    sched.WaitFor("t1.a.done");
    auto r = db->RunTransactionOnce("T4", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(Value a,
                             ctx.Invoke(s->o1, "TestStatus", {Value(kPaid)}));
      SEMCC_ASSIGN_OR_RETURN(Value b,
                             ctx.Invoke(s->o2, "TestStatus", {Value(kPaid)}));
      return Value(static_cast<int64_t>((a.AsBool() ? 1 : 0) |
                                        (b.AsBool() ? 2 : 0)));
    });
    out.t_right_committed = r.ok();
    sched.Signal("t4.done");
  });
  t1.join();
  t4.join();
  out.right_overlapped_left = RightOverlappedLeft(db, "T1", "T4");
  out.trace = CollectTrace(db);
  out.note = db->locks()->stats().ToString();
  return out;
}

// --- Figure 7 (Case 2) --------------------------------------------------------

ScenarioOutcome RunFig7(PaperScenario* s) {
  ScenarioOutcome out;
  Database* db = s->db.get();
  ScriptedSchedule& sched = s->schedule;

  std::thread t1([&]() {
    auto r = db->RunTransactionOnce("T1", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(
          Value a, ctx.Invoke(s->i1, "ShipOrderHold", {Value(s->ono1)}));
      (void)a;
      sched.Signal("ship.done");
      // Keep the transaction open so T5's resumption point is observable.
      sched.WaitFor("t5.done", milliseconds(2000));
      return ctx.Invoke(s->i2, "ShipOrder", {Value(s->ono2)});
    });
    out.t_left_committed = r.ok();
  });
  std::thread t5([&]() {
    sched.WaitFor("ship.cs.done");
    auto r = db->RunTransactionOnce("T5", [&](TxnCtx& ctx) -> Result<Value> {
      return ctx.Invoke(s->i1, "TotalPayment", {});
    });
    out.t_right_committed = r.ok();
    sched.Signal("t5.done");
  });

  // Observer: wait until T5 is parked in its lock wait (or concludes it will
  // not block), then release the held ShipOrder subtransaction.
  sched.WaitFor("ship.cs.done");
  bool saw_waiter = false;
  for (int i = 0; i < 200; ++i) {
    if (db->locks()->NumWaiters() > 0) {
      saw_waiter = true;
      break;
    }
    if (sched.HasFired("t5.done")) break;  // T5 was never blocked
    std::this_thread::sleep_for(milliseconds(5));
  }
  out.note = saw_waiter ? "T5 blocked while ShipOrder(i1,o1) was active"
                        : "T5 was never blocked";
  sched.Signal("release_ship");

  t1.join();
  t5.join();
  out.right_overlapped_left = RightOverlappedLeft(db, "T1", "T5");
  out.trace = CollectTrace(db);
  out.note += "; " + db->locks()->stats().ToString();
  return out;
}

}  // namespace orderentry
}  // namespace semcc
