// Randomized order-entry workload driver (the paper's §2.3 transaction mix
// over the §2.1 schema), used by the throughput/contention benchmarks and
// the property tests.
#ifndef SEMCC_APP_ORDERENTRY_WORKLOAD_H_
#define SEMCC_APP_ORDERENTRY_WORKLOAD_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "app/orderentry/order_entry.h"
#include "util/random.h"

namespace semcc {
namespace orderentry {

struct WorkloadOptions {
  LoadSpec load;
  /// Item-selection skew (0 = uniform; 0.99 = strong hot spot).
  double zipf_theta = 0.0;
  /// Transaction mix in percent; any remainder goes to T5 (TotalPayment).
  int pct_t1 = 25;         // ship two orders
  int pct_t2 = 25;         // pay two orders
  int pct_t3 = 15;         // check shipment (bypassing)
  int pct_t4 = 15;         // check payment (bypassing)
  int pct_new_order = 10;  // NewOrder
  /// Sleep between the two top-level actions of T1-T4 (models the paper's
  /// long transactions; 0 = none).
  int64_t think_micros = 0;
  uint64_t seed = 42;
  int max_retries = 16;
  /// Run the read-only transaction types (T3, T4, T5) through
  /// Database::RunReadTransaction. With protocol.mvcc_reads these become
  /// lock-free snapshot reads; without it they degrade to the ordinary
  /// locking path — same workload code either way, which is what makes the
  /// mvcc_reads flag a clean on/off ablation.
  bool snapshot_readers = false;
  /// Make T5 scan the item twice. The second TotalPayment re-acquires a
  /// lock the tree already holds, driving the lock manager's per-tree grant
  /// cache (fast-path reacquire) under the locking protocols.
  bool t5_double_scan = false;
  /// Make T5 scan *all* items in one transaction (T5_TotalPaymentScan)
  /// instead of a single zipf-picked item. Under plain locking the scan
  /// read-locks the whole item set and so collides with any in-flight
  /// updater; under mvcc_reads it is lock-free. This is the read-mix
  /// benchmark's lever for exposing the snapshot-read gap.
  bool t5_scan_all = false;
  /// Think time for the reader transactions (T3/T4) only; -1 means "use
  /// think_micros". The read-mix benchmarks set this to 0 so reader
  /// throughput is bounded by lock waiting (or, under mvcc, by nothing)
  /// rather than by sleeping.
  int64_t reader_think_micros = -1;
};

/// \brief Per-worker-thread state (own PRNG streams, so runs are
/// deterministic given (seed, thread index)).
struct WorkerState {
  WorkerState(uint64_t seed, uint64_t items, double theta)
      : rng(seed), zipf(items, theta, seed ^ 0x9e37ULL) {}
  Random rng;
  ZipfianGenerator zipf;
  uint64_t committed = 0;
  uint64_t failed = 0;
  // Reader/writer split (readers = T3/T4/T5; writers = T1/T2/NewOrder).
  uint64_t read_committed = 0;
  uint64_t read_failed = 0;
  /// Root waits suffered by this worker while executing readers / writers
  /// (from LockManager::ThreadRootWaits deltas around each transaction).
  uint64_t reader_root_waits = 0;
  uint64_t writer_root_waits = 0;
};

/// \brief Generates and runs the five paper transaction types (plus
/// NewOrder) against a loaded order-entry database.
class OrderEntryWorkload {
 public:
  OrderEntryWorkload(Database* db, const OrderEntryTypes& types,
                     WorkloadOptions opts);

  /// Load the initial data (outside transactions).
  Status Setup();

  /// Adopt another workload's loaded data and per-item order-number
  /// high-water marks instead of Load()ing fresh objects. The phase-shift
  /// benchmarks run several WorkloadOptions phases against ONE database —
  /// only the first phase's workload calls Setup(); later phases adopt so
  /// their order-number picks stay valid against the grown order sets.
  void AdoptData(const OrderEntryWorkload& other);

  /// Run one randomly chosen transaction. Returns OK on commit; system
  /// aborts beyond the retry budget and application errors surface here.
  Status RunOne(WorkerState* ws);

  /// Run `txns_per_thread` transactions on each of `threads` workers.
  struct RunResult {
    uint64_t committed = 0;
    uint64_t failed = 0;
    double seconds = 0;
    double throughput_tps = 0;
    // Reader/writer split (readers = T3/T4/T5; writers = T1/T2/NewOrder).
    uint64_t read_committed = 0;
    uint64_t write_committed = 0;
    uint64_t read_failed = 0;
    uint64_t reader_root_waits = 0;
    uint64_t writer_root_waits = 0;
    double read_tps = 0;
    double write_tps = 0;
  };
  RunResult Run(int threads, int txns_per_thread);

  std::unique_ptr<WorkerState> MakeWorkerState(int worker_index) const;

  const LoadedData& data() const { return data_; }
  Database* db() const { return db_; }

  /// Sum of all items' TotalPayment — a consistency probe used by property
  /// tests (must match a serial replay).
  Result<int64_t> TotalPaymentAllItems();

 private:
  enum class TxnKind { kT1, kT2, kT3, kT4, kT5, kNewOrder };
  TxnKind PickKind(Random* rng) const;
  Oid PickItem(WorkerState* ws, size_t* index_out) const;
  int64_t PickOrder(WorkerState* ws, size_t item_index) const;

  Database* const db_;
  const OrderEntryTypes types_;
  const WorkloadOptions opts_;
  LoadedData data_;
  /// Highest known committed order number per item (grows with NewOrder).
  std::vector<std::unique_ptr<std::atomic<int64_t>>> max_order_;
};

}  // namespace orderentry
}  // namespace semcc

#endif  // SEMCC_APP_ORDERENTRY_WORKLOAD_H_
