// DiskManager: page-granular backing store.
//
// The reproduction runs everything in memory (the paper's contribution is a
// concurrency-control protocol, not an I/O path), but the interface is the
// classical one so the buffer pool above it behaves like a real system:
// whole-page reads/writes, explicit allocation, and an optional simulated
// per-I/O latency for benchmarks that want buffer-pool pressure to matter.
#ifndef SEMCC_STORAGE_DISK_MANAGER_H_
#define SEMCC_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/status.h"

namespace semcc {

/// \brief In-memory array-of-pages "disk".
class DiskManager {
 public:
  /// \param simulated_io_micros busy-wait per page I/O (0 = none).
  explicit DiskManager(uint32_t simulated_io_micros = 0);
  SEMCC_DISALLOW_COPY_AND_ASSIGN(DiskManager);

  /// Allocate a fresh page; returns its id.
  PageId AllocatePage();

  /// Copy page `id` from the disk image into `*out`.
  Status ReadPage(PageId id, char* out);

  /// Copy `data` (kPageSize bytes) into the disk image of page `id`.
  Status WritePage(PageId id, const char* data);

  uint64_t num_pages() const { return next_page_id_.load(); }
  uint64_t reads() const { return reads_.load(); }
  uint64_t writes() const { return writes_.load(); }

 private:
  void SimulateIo();

  const uint32_t simulated_io_micros_;
  std::atomic<PageId> next_page_id_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};

  Mutex mu_;  // protects image_ growth; page slots are stable pointers
  std::vector<std::unique_ptr<char[]>> image_ SEMCC_GUARDED_BY(mu_);
};

}  // namespace semcc

#endif  // SEMCC_STORAGE_DISK_MANAGER_H_
