#include "storage/record_manager.h"

#include <cstdio>

#include "util/coding.h"
#include "util/logging.h"

namespace semcc {

// On-page record format (managed by RecordManager, opaque to Page):
//   data    [kKindData][u32 payload_len][payload...]   padded to >= 7 bytes
//   forward [kKindForward][u32 page_id][u16 slot]      exactly 7 bytes
//
// A record that outgrows its page is re-inserted elsewhere and its original
// slot becomes a forward pointer, so RIDs handed out to clients stay stable.
// Because every data record is at least as large as a forward record, the
// in-place conversion can never fail, and because Update always rewrites the
// *entry* slot's forward, chains stay at most one hop long.
namespace {

constexpr char kKindData = 0;
constexpr char kKindForward = 1;
constexpr size_t kMinRecordBytes = 7;

std::string WrapData(std::string_view payload) {
  std::string out;
  out.push_back(kKindData);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  if (out.size() < kMinRecordBytes) out.resize(kMinRecordBytes, '\0');
  return out;
}

std::string WrapForward(const Rid& target) {
  std::string out;
  out.push_back(kKindForward);
  PutU32(&out, target.page_id);
  PutU16(&out, target.slot);
  return out;
}

Result<std::string> UnwrapData(std::string_view raw) {
  Decoder dec(raw);
  uint8_t kind;
  uint32_t len;
  if (!dec.GetU8(&kind) || kind != kKindData || !dec.GetU32(&len) ||
      dec.remaining() < len) {
    return Status::Corruption("bad data record");
  }
  std::string out;
  out.resize(len);
  std::string_view rest(raw.data() + 5, raw.size() - 5);
  out.assign(rest.data(), len);
  return out;
}

Result<Rid> UnwrapForward(std::string_view raw) {
  Decoder dec(raw);
  uint8_t kind;
  uint32_t page;
  uint16_t slot;
  if (!dec.GetU8(&kind) || kind != kKindForward || !dec.GetU32(&page) ||
      !dec.GetU16(&slot)) {
    return Status::Corruption("bad forward record");
  }
  return Rid{page, slot};
}

bool IsForward(std::string_view raw) {
  return !raw.empty() && raw.front() == kKindForward;
}

}  // namespace

std::string Rid::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u", page_id, slot);
  return buf;
}

RecordManager::RecordManager(BufferPool* pool) : pool_(pool) {}

Result<Rid> RecordManager::InsertWrapped(std::string_view wrapped) {
  MutexLock guard(mu_);
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (current_page_ == kInvalidPageId) {
      SEMCC_ASSIGN_OR_RETURN(PageGuard page, pool_->NewPage());
      current_page_ = page->page_id();
      page->WLatch();
      auto slot = page->Insert(wrapped);
      page->WUnlatch();
      if (slot.ok()) {
        page.MarkDirty();
        return Rid{current_page_, slot.ValueOrDie()};
      }
      return slot.status();
    }
    SEMCC_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(current_page_));
    page->WLatch();
    auto slot = page->Insert(wrapped);
    page->WUnlatch();
    if (slot.ok()) {
      page.MarkDirty();
      return Rid{current_page_, slot.ValueOrDie()};
    }
    if (!slot.status().IsOutOfSpace()) return slot.status();
    current_page_ = kInvalidPageId;  // page full: move to a fresh one
  }
  return Status::Internal("record insert failed twice");
}

Result<Rid> RecordManager::Insert(std::string_view record) {
  SEMCC_ASSIGN_OR_RETURN(Rid rid, InsertWrapped(WrapData(record)));
  num_inserts_.fetch_add(1, std::memory_order_relaxed);
  return rid;
}

Result<std::string> RecordManager::ReadRaw(const Rid& rid) {
  SEMCC_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page_id));
  page->RLatch();
  auto view = page->Read(rid.slot);
  std::string out;
  if (view.ok()) out.assign(view.ValueOrDie().data(), view.ValueOrDie().size());
  page->RUnlatch();
  if (!view.ok()) return view.status();
  return out;
}

Result<Rid> RecordManager::ResolveTerminal(const Rid& rid, std::string* raw) {
  Rid cur = rid;
  for (int hop = 0; hop < 8; ++hop) {
    SEMCC_ASSIGN_OR_RETURN(*raw, ReadRaw(cur));
    if (!IsForward(*raw)) return cur;
    SEMCC_ASSIGN_OR_RETURN(cur, UnwrapForward(*raw));
  }
  return Status::Corruption("forward chain too long");
}

Result<std::string> RecordManager::Read(const Rid& rid) {
  std::string raw;
  SEMCC_ASSIGN_OR_RETURN(Rid terminal, ResolveTerminal(rid, &raw));
  (void)terminal;
  return UnwrapData(raw);
}

Status RecordManager::UpdateInPage(const Rid& rid, std::string_view wrapped) {
  SEMCC_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page_id));
  page->WLatch();
  Status st = page->Update(rid.slot, wrapped);
  page->WUnlatch();
  if (st.ok()) page.MarkDirty();
  return st;
}

Status RecordManager::Update(const Rid& rid, std::string_view record) {
  std::string raw;
  SEMCC_ASSIGN_OR_RETURN(Rid terminal, ResolveTerminal(rid, &raw));
  const std::string wrapped = WrapData(record);
  Status st = UpdateInPage(terminal, wrapped);
  if (st.ok()) return Status::OK();
  if (!st.IsOutOfSpace()) return st;
  // The record outgrew its page: relocate and leave a forward pointer at the
  // ENTRY slot (a forward record never exceeds a data record's size, so this
  // conversion always fits in place).
  SEMCC_ASSIGN_OR_RETURN(Rid fresh, InsertWrapped(wrapped));
  SEMCC_RETURN_NOT_OK(UpdateInPage(rid, WrapForward(fresh)));
  if (!(terminal == rid)) {
    // The old one-hop target is now unreachable; reclaim it.
    SEMCC_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(terminal.page_id));
    page->WLatch();
    Status del = page->Delete(terminal.slot);
    page->WUnlatch();
    if (del.ok()) page.MarkDirty();
  }
  return Status::OK();
}

Status RecordManager::Delete(const Rid& rid) {
  std::string raw;
  SEMCC_ASSIGN_OR_RETURN(Rid terminal, ResolveTerminal(rid, &raw));
  SEMCC_ASSIGN_OR_RETURN(PageGuard page, pool_->FetchPage(rid.page_id));
  page->WLatch();
  Status st = page->Delete(rid.slot);
  page->WUnlatch();
  if (st.ok()) page.MarkDirty();
  SEMCC_RETURN_NOT_OK(st);
  if (!(terminal == rid)) {
    SEMCC_ASSIGN_OR_RETURN(PageGuard tpage, pool_->FetchPage(terminal.page_id));
    tpage->WLatch();
    Status del = tpage->Delete(terminal.slot);
    tpage->WUnlatch();
    if (del.ok()) tpage.MarkDirty();
  }
  return Status::OK();
}

}  // namespace semcc
