#include "storage/posix_file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace semcc {

namespace {
Status Errno(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}
}  // namespace

PosixWritableFile::~PosixWritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status PosixWritableFile::Open(const std::string& path) {
  if (fd_ >= 0) return Status::InvalidArgument("file already open: " + path_);
  // No O_APPEND: appends go through pwrite at the tracked logical offset
  // (Linux pwrite on an O_APPEND fd ignores the offset and appends, which
  // would defeat preallocated-overwrite segments).
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return Errno("open", path);
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  fd_ = fd;
  size_ = static_cast<uint64_t>(end);
  physical_size_ = size_;
  path_ = path;
  return Status::OK();
}

Status PosixWritableFile::Append(const char* data, size_t n) {
  if (fd_ < 0) return Status::InvalidArgument("append on closed file");
  while (n > 0) {
    const ssize_t w = ::pwrite(fd_, data, n, static_cast<off_t>(size_));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite", path_);
    }
    data += w;
    n -= static_cast<size_t>(w);
    size_ += static_cast<uint64_t>(w);
  }
  physical_size_ = std::max(physical_size_, size_);
  return Status::OK();
}

Status PosixWritableFile::PreallocateTo(uint64_t physical_bytes) {
  if (fd_ < 0) return Status::InvalidArgument("preallocate on closed file");
  if (physical_size_ >= physical_bytes) return Status::OK();
  // Written-through zeros, not fallocate: unwritten extents would still
  // journal an extent-state conversion on the first real overwrite, which
  // is the metadata cost preallocation exists to pay up front.
  char zeros[1 << 16] = {};
  uint64_t off = physical_size_;
  while (off < physical_bytes) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(sizeof(zeros), physical_bytes - off));
    const ssize_t w = ::pwrite(fd_, zeros, chunk, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite (preallocate)", path_);
    }
    off += static_cast<uint64_t>(w);
  }
  // Full fsync: the size change and new extents must be durable before any
  // commit relies on a data-only fdatasync of the overwritten range.
  if (::fsync(fd_) != 0) return Errno("fsync (preallocate)", path_);
  physical_size_ = physical_bytes;
  return Status::OK();
}

Status PosixWritableFile::Sync() {
  if (fd_ < 0) return Status::InvalidArgument("sync on closed file");
#if defined(__linux__)
  // fdatasync skips the inode-metadata write when only mtime changed. For
  // an append-only log segment the file size changes too, and POSIX
  // guarantees fdatasync still flushes the metadata needed to read the new
  // bytes back — so this is safe for the WAL and saves a journal commit on
  // filesystems that would otherwise flush atime/mtime.
  if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
#else
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
#endif
  return Status::OK();
}

Status PosixWritableFile::Truncate(uint64_t size) {
  if (fd_ < 0) return Status::InvalidArgument("truncate on closed file");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate", path_);
  }
  size_ = size;
  physical_size_ = size;
  return Status::OK();
}

Status PosixWritableFile::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("close", path_);
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  char buf[1 << 16];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (r == 0) break;
    out->append(buf, static_cast<size_t>(r));
  }
  ::close(fd);
  return Status::OK();
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
  return Status::OK();
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Errno("mkdir", dir);
}

Status SyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

void CleanupDirectoryForTesting(const std::string& dir) {
  auto names = ListDirectory(dir);
  if (names.ok()) {
    for (const std::string& name : names.ValueOrDie()) {
      (void)RemoveFile(dir + "/" + name);
    }
  }
  ::rmdir(dir.c_str());
}

}  // namespace semcc
