// Slotted page: the unit of disk transfer and of page-granularity locking.
//
// Layout (little-endian, offsets in bytes):
//   [0..3]   page_id
//   [4..5]   slot_count
//   [6..7]   free_space_offset (start of the record heap, grows downwards)
//   [8..]    slot directory: slot_count entries of {offset:u16, size:u16}
//   ...      free space
//   [free_space_offset..kPageSize) record heap
//
// A deleted slot has offset == kInvalidSlotOffset; slot ids are never reused
// within a page so RIDs stay stable.
#ifndef SEMCC_STORAGE_PAGE_H_
#define SEMCC_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/annotations.h"
#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace semcc {

using PageId = uint32_t;
constexpr PageId kInvalidPageId = UINT32_MAX;

constexpr size_t kPageSize = 4096;

/// \brief A slotted page holding variable-length records ("storage atoms").
///
/// Thread safety: callers must hold the page latch (RLatch/WLatch) around
/// reads/writes; the buffer pool manages pin counts separately.
class Page {
 public:
  static constexpr uint16_t kInvalidSlotOffset = 0xFFFF;
  static constexpr size_t kHeaderSize = 8;
  static constexpr size_t kSlotEntrySize = 4;

  Page() { Reset(kInvalidPageId); }

  /// Re-initialize as an empty page with the given id.
  void Reset(PageId id);

  PageId page_id() const { return ReadU32(0); }
  uint16_t slot_count() const { return ReadU16(4); }

  /// Contiguous free bytes available for one more record (incl. slot entry).
  size_t FreeSpace() const;

  /// Insert a record; returns its slot id.
  Result<uint16_t> Insert(std::string_view record);

  /// Read the record in `slot`.
  Result<std::string_view> Read(uint16_t slot) const;

  /// Replace the record in `slot`. The new record may have a different size;
  /// fails with OutOfSpace if the page cannot hold it (no overflow chains —
  /// semcc atoms are small).
  Status Update(uint16_t slot, std::string_view record);

  /// Tombstone the record in `slot`.
  Status Delete(uint16_t slot);

  /// Number of live (non-deleted) records.
  uint16_t LiveRecords() const;

  const char* data() const { return data_; }
  char* data() { return data_; }

  // Latching (physical consistency; independent of transactional locks).
  void RLatch() const SEMCC_ACQUIRE_SHARED(latch_) { latch_.LockShared(); }
  void RUnlatch() const SEMCC_RELEASE_SHARED(latch_) { latch_.UnlockShared(); }
  void WLatch() const SEMCC_ACQUIRE(latch_) { latch_.Lock(); }
  void WUnlatch() const SEMCC_RELEASE(latch_) { latch_.Unlock(); }

 private:
  uint16_t ReadU16(size_t off) const {
    uint16_t v;
    std::memcpy(&v, data_ + off, sizeof(v));
    return v;
  }
  uint32_t ReadU32(size_t off) const {
    uint32_t v;
    std::memcpy(&v, data_ + off, sizeof(v));
    return v;
  }
  void WriteU16(size_t off, uint16_t v) { std::memcpy(data_ + off, &v, sizeof(v)); }
  void WriteU32(size_t off, uint32_t v) { std::memcpy(data_ + off, &v, sizeof(v)); }

  uint16_t free_space_offset() const { return ReadU16(6); }
  void set_free_space_offset(uint16_t v) { WriteU16(6, v); }
  void set_slot_count(uint16_t v) { WriteU16(4, v); }

  size_t SlotEntryPos(uint16_t slot) const {
    return kHeaderSize + static_cast<size_t>(slot) * kSlotEntrySize;
  }
  uint16_t SlotOffset(uint16_t slot) const { return ReadU16(SlotEntryPos(slot)); }
  uint16_t SlotSize(uint16_t slot) const { return ReadU16(SlotEntryPos(slot) + 2); }
  void SetSlot(uint16_t slot, uint16_t offset, uint16_t size) {
    WriteU16(SlotEntryPos(slot), offset);
    WriteU16(SlotEntryPos(slot) + 2, size);
  }

  /// Compact the record heap to reclaim holes left by deletes/updates.
  void Compact();

  char data_[kPageSize];
  mutable SharedMutex latch_;
};

}  // namespace semcc

#endif  // SEMCC_STORAGE_PAGE_H_
