#include "storage/buffer_pool.h"

#include "util/logging.h"

namespace semcc {

BufferPool::BufferPool(size_t pool_size, DiskManager* disk) : disk_(disk) {
  SEMCC_CHECK(pool_size > 0);
  frames_.reserve(pool_size);
  free_frames_.reserve(pool_size);
  for (size_t i = 0; i < pool_size; ++i) {
    frames_.push_back(std::make_unique<Frame>());
    free_frames_.push_back(pool_size - 1 - i);
  }
}

BufferPool::~BufferPool() {
  // A destructor cannot propagate failure; surface it instead of dropping it.
  const Status flushed = FlushAll();
  if (!flushed.ok()) {
    SEMCC_LOG(Error) << "final FlushAll failed: " << flushed.ToString();
  }
}

Result<size_t> BufferPool::Pin(PageId id, bool* hit) {
  MutexLock guard(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    const size_t idx = it->second;
    Frame* f = frames_[idx].get();
    if (f->pin_count == 0) {
      auto pos = lru_pos_.find(idx);
      SEMCC_CHECK(pos != lru_pos_.end());
      lru_.erase(pos->second);
      lru_pos_.erase(pos);
    }
    f->pin_count++;
    *hit = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return idx;
  }
  *hit = false;
  misses_.fetch_add(1, std::memory_order_relaxed);
  size_t idx;
  if (!free_frames_.empty()) {
    idx = free_frames_.back();
    free_frames_.pop_back();
  } else {
    if (lru_.empty()) {
      return Status::OutOfSpace("buffer pool exhausted: all frames pinned");
    }
    idx = lru_.back();
    lru_.pop_back();
    lru_pos_.erase(idx);
    Frame* victim = frames_[idx].get();
    SEMCC_CHECK(victim->pin_count == 0);
    if (victim->dirty) {
      SEMCC_RETURN_NOT_OK(disk_->WritePage(victim->disk_id, victim->page.data()));
    }
    page_table_.erase(victim->disk_id);
  }
  Frame* f = frames_[idx].get();
  f->disk_id = id;
  f->pin_count = 1;
  f->dirty = false;
  page_table_[id] = idx;
  return idx;
}

void BufferPool::Unpin(size_t frame_idx, bool dirty) {
  MutexLock guard(mu_);
  Frame* f = frames_[frame_idx].get();
  SEMCC_CHECK(f->pin_count > 0);
  if (dirty) f->dirty = true;
  if (--f->pin_count == 0) {
    lru_.push_front(frame_idx);
    lru_pos_[frame_idx] = lru_.begin();
  }
}

Result<PageGuard> BufferPool::NewPage() {
  const PageId id = disk_->AllocatePage();
  bool hit = false;
  SEMCC_ASSIGN_OR_RETURN(size_t idx, Pin(id, &hit));
  Frame* f = frames_[idx].get();
  f->page.Reset(id);
  PageGuard guard(this, idx, &f->page);
  guard.MarkDirty();
  return guard;
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  bool hit = false;
  SEMCC_ASSIGN_OR_RETURN(size_t idx, Pin(id, &hit));
  Frame* f = frames_[idx].get();
  if (!hit) {
    Status st = disk_->ReadPage(id, f->page.data());
    if (!st.ok()) {
      Unpin(idx, /*dirty=*/false);
      return st;
    }
  }
  return PageGuard(this, idx, &f->page);
}

Status BufferPool::FlushAll() {
  MutexLock guard(mu_);
  for (auto& [id, idx] : page_table_) {
    Frame* f = frames_[idx].get();
    if (f->dirty) {
      SEMCC_RETURN_NOT_OK(disk_->WritePage(f->disk_id, f->page.data()));
      f->dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace semcc
