#include "storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace semcc {

DiskManager::DiskManager(uint32_t simulated_io_micros)
    : simulated_io_micros_(simulated_io_micros) {}

PageId DiskManager::AllocatePage() {
  MutexLock guard(mu_);
  const PageId id = next_page_id_.fetch_add(1);
  image_.push_back(std::make_unique<char[]>(kPageSize));
  std::memset(image_.back().get(), 0, kPageSize);
  return id;
}

Status DiskManager::ReadPage(PageId id, char* out) {
  char* src = nullptr;
  {
    MutexLock guard(mu_);
    if (id >= image_.size()) return Status::NotFound("page beyond disk image");
    src = image_[id].get();
  }
  SimulateIo();
  std::memcpy(out, src, kPageSize);
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* data) {
  char* dst = nullptr;
  {
    MutexLock guard(mu_);
    if (id >= image_.size()) return Status::NotFound("page beyond disk image");
    dst = image_[id].get();
  }
  SimulateIo();
  std::memcpy(dst, data, kPageSize);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void DiskManager::SimulateIo() {
  if (simulated_io_micros_ == 0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(simulated_io_micros_);
  while (std::chrono::steady_clock::now() < until) {
    std::this_thread::yield();
  }
}

}  // namespace semcc
