#include "storage/page.h"

#include <vector>

#include "util/logging.h"

namespace semcc {

void Page::Reset(PageId id) {
  std::memset(data_, 0, kPageSize);
  WriteU32(0, id);
  set_slot_count(0);
  set_free_space_offset(static_cast<uint16_t>(kPageSize));
}

size_t Page::FreeSpace() const {
  const size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  const size_t heap_start = free_space_offset();
  if (heap_start < dir_end + kSlotEntrySize) return 0;
  return heap_start - dir_end - kSlotEntrySize;
}

Result<uint16_t> Page::Insert(std::string_view record) {
  if (record.size() > kPageSize - kHeaderSize - kSlotEntrySize) {
    return Status::InvalidArgument("record larger than page");
  }
  if (FreeSpace() < record.size()) {
    // A hole-ridden heap may still have room after compaction.
    Compact();
    if (FreeSpace() < record.size()) {
      return Status::OutOfSpace("page full");
    }
  }
  const uint16_t slot = slot_count();
  const uint16_t new_off =
      static_cast<uint16_t>(free_space_offset() - record.size());
  std::memcpy(data_ + new_off, record.data(), record.size());
  set_free_space_offset(new_off);
  set_slot_count(slot + 1);
  SetSlot(slot, new_off, static_cast<uint16_t>(record.size()));
  return slot;
}

Result<std::string_view> Page::Read(uint16_t slot) const {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  const uint16_t off = SlotOffset(slot);
  if (off == kInvalidSlotOffset) return Status::NotFound("slot deleted");
  return std::string_view(data_ + off, SlotSize(slot));
}

Status Page::Update(uint16_t slot, std::string_view record) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  const uint16_t off = SlotOffset(slot);
  if (off == kInvalidSlotOffset) return Status::NotFound("slot deleted");
  const uint16_t old_size = SlotSize(slot);
  if (record.size() <= old_size) {
    std::memcpy(data_ + off, record.data(), record.size());
    SetSlot(slot, off, static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  // The grown record needs relocation within the page. Check feasibility
  // BEFORE touching anything: after reclaiming the old copy and compacting,
  // the heap can hold exactly (page - directory - other live bytes).
  size_t live_bytes = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != kInvalidSlotOffset) live_bytes += SlotSize(s);
  }
  const size_t dir_bytes = kHeaderSize + slot_count() * kSlotEntrySize;
  const size_t available = kPageSize - dir_bytes - (live_bytes - old_size);
  if (available < record.size()) {
    return Status::OutOfSpace("page cannot hold updated record");
  }
  // Tombstone the old copy, reclaim, then append. Slot id is preserved.
  SetSlot(slot, kInvalidSlotOffset, 0);
  const size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  if (free_space_offset() - dir_end < record.size()) {
    Compact();
  }
  SEMCC_CHECK(free_space_offset() - dir_end >= record.size());
  const uint16_t new_off =
      static_cast<uint16_t>(free_space_offset() - record.size());
  std::memcpy(data_ + new_off, record.data(), record.size());
  set_free_space_offset(new_off);
  SetSlot(slot, new_off, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

Status Page::Delete(uint16_t slot) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  if (SlotOffset(slot) == kInvalidSlotOffset) {
    return Status::NotFound("slot already deleted");
  }
  SetSlot(slot, kInvalidSlotOffset, 0);
  return Status::OK();
}

uint16_t Page::LiveRecords() const {
  uint16_t live = 0;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != kInvalidSlotOffset) ++live;
  }
  return live;
}

void Page::Compact() {
  struct Live {
    uint16_t slot;
    uint16_t offset;
    uint16_t size;
  };
  std::vector<Live> live;
  live.reserve(slot_count());
  for (uint16_t s = 0; s < slot_count(); ++s) {
    const uint16_t off = SlotOffset(s);
    if (off != kInvalidSlotOffset) live.push_back({s, off, SlotSize(s)});
  }
  // Copy records into a scratch heap packed at the page end, highest offset
  // first to keep relative order (not required, but deterministic).
  char scratch[kPageSize];
  uint16_t cursor = static_cast<uint16_t>(kPageSize);
  for (const Live& l : live) {
    cursor = static_cast<uint16_t>(cursor - l.size);
    std::memcpy(scratch + cursor, data_ + l.offset, l.size);
  }
  std::memcpy(data_ + cursor, scratch + cursor, kPageSize - cursor);
  uint16_t write_off = static_cast<uint16_t>(kPageSize);
  for (const Live& l : live) {
    write_off = static_cast<uint16_t>(write_off - l.size);
    SetSlot(l.slot, write_off, l.size);
  }
  set_free_space_offset(cursor);
}

}  // namespace semcc
