// Thin POSIX file layer for the storage/recovery subsystems: the classical
// write()/fsync() durability path that DiskManager's in-memory page array
// stands in for elsewhere. Everything returns Status — callers (the log
// device, eventually a file-backed DiskManager) decide whether an I/O error
// is fatal, retryable, or a reason to degrade.
#ifndef SEMCC_STORAGE_POSIX_FILE_H_
#define SEMCC_STORAGE_POSIX_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/macros.h"
#include "util/result.h"
#include "util/status.h"

namespace semcc {

/// \brief Append-only writable file (the log-segment shape): sequential
/// pwrite() at a tracked logical offset with full-write loop semantics,
/// explicit Sync() = fdatasync/fsync.
///
/// The logical size (bytes appended) and the physical size (bytes the file
/// occupies on disk) differ only after PreallocateTo(): appends then
/// overwrite the preallocated zeros in place, which keeps the per-commit
/// fdatasync a pure data flush — no block allocation, no inode size change,
/// no filesystem-journal commit. Measured on ext4 this roughly halves the
/// p50 sync latency and collapses its tail (p90 ~550us -> ~250us).
class PosixWritableFile {
 public:
  PosixWritableFile() = default;
  ~PosixWritableFile();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(PosixWritableFile);

  /// Open (creating if needed); the current file end becomes both the
  /// logical and physical size.
  Status Open(const std::string& path);

  /// Write all of `data` at the logical end, looping over short writes and
  /// EINTR. A partial write followed by an error leaves the partial bytes
  /// in place — exactly the torn-write shape recovery must tolerate.
  Status Append(const char* data, size_t n);

  /// Extend the file with written-through zeros to `physical_bytes` and
  /// fsync, without moving the logical end: later Appends overwrite the
  /// zeros in place. The zero padding beyond the last real append is
  /// indistinguishable from a torn tail to the frame scanner, which is what
  /// makes a crash (or clean close) of a preallocated segment recoverable.
  /// No-op if the file is already at least that large.
  Status PreallocateTo(uint64_t physical_bytes);

  /// fdatasync (fsync where unavailable): make every appended byte durable.
  Status Sync();

  /// Truncate to `size` bytes (tail repair after a detected torn write).
  /// Discards any preallocated padding past `size` as well.
  Status Truncate(uint64_t size);

  Status Close();

  bool is_open() const { return fd_ >= 0; }
  /// Logical size: bytes appended (excludes preallocated padding).
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  int fd_ = -1;
  uint64_t size_ = 0;           // logical: next append offset
  uint64_t physical_size_ = 0;  // on-disk file size (>= size_)
  std::string path_;
};

/// Read the whole file into `*out` (replacing its contents).
Status ReadFileToString(const std::string& path, std::string* out);

/// File size in bytes.
Result<uint64_t> FileSize(const std::string& path);

/// Truncate an existing file to `size` bytes.
Status TruncateFile(const std::string& path, uint64_t size);

Status RemoveFile(const std::string& path);

/// Create the directory if it does not exist (single level).
Status EnsureDirectory(const std::string& dir);

/// fsync the directory itself, making file creations/removals durable.
Status SyncDirectory(const std::string& dir);

/// Sorted names (not paths) of regular files in `dir`.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

/// Best-effort recursive-free cleanup for tests and benches: remove every
/// regular file in `dir`, then `dir` itself. Missing directory is fine;
/// errors are ignored.
void CleanupDirectoryForTesting(const std::string& dir);

}  // namespace semcc

#endif  // SEMCC_STORAGE_POSIX_FILE_H_
