// RecordManager: variable-length records ("storage atoms") addressed by RID.
//
// This is the layer the paper calls "the storage atoms (i.e., flat records)
// onto which the components of complex objects are mapped". Record- and
// page-granularity baselines lock RIDs / the RID's page id.
#ifndef SEMCC_STORAGE_RECORD_MANAGER_H_
#define SEMCC_STORAGE_RECORD_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/result.h"

namespace semcc {

/// \brief Record id: page + slot. Stable for the record's lifetime.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& other) const = default;
  bool valid() const { return page_id != kInvalidPageId; }
  std::string ToString() const;
};

struct RidHash {
  size_t operator()(const Rid& rid) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(rid.page_id) << 16) |
                                 rid.slot);
  }
};

/// \brief Heap-file style record store over the buffer pool.
class RecordManager {
 public:
  explicit RecordManager(BufferPool* pool);
  SEMCC_DISALLOW_COPY_AND_ASSIGN(RecordManager);

  /// Append a record; fills pages in allocation order so that records
  /// inserted together land on the same page (this is what makes page-level
  /// locking contend, as in a real system's clustering).
  Result<Rid> Insert(std::string_view record);

  Result<std::string> Read(const Rid& rid);
  /// Updates may grow a record arbitrarily: a record that no longer fits its
  /// page is relocated and the original slot becomes a forward pointer, so
  /// the RID stays valid (chains are kept at one hop).
  Status Update(const Rid& rid, std::string_view record);
  Status Delete(const Rid& rid);

  uint64_t num_inserts() const {
    return num_inserts_.load(std::memory_order_relaxed);
  }

 private:
  Result<Rid> InsertWrapped(std::string_view wrapped) SEMCC_EXCLUDES(mu_);
  Result<std::string> ReadRaw(const Rid& rid);
  Result<Rid> ResolveTerminal(const Rid& rid, std::string* raw);
  Status UpdateInPage(const Rid& rid, std::string_view wrapped);

  BufferPool* const pool_;
  Mutex mu_;  // serializes the choice of insertion target page
  PageId current_page_ SEMCC_GUARDED_BY(mu_) = kInvalidPageId;
  std::atomic<uint64_t> num_inserts_{0};
};

}  // namespace semcc

#endif  // SEMCC_STORAGE_RECORD_MANAGER_H_
