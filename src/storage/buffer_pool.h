// BufferPool: fixed set of in-memory frames over the DiskManager with LRU
// eviction and pin counting.
#ifndef SEMCC_STORAGE_BUFFER_POOL_H_
#define SEMCC_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"
#include "util/annotations.h"
#include "util/macros.h"
#include "util/result.h"

namespace semcc {

/// \brief RAII pin on a buffered page. Unpins (and marks dirty, if requested)
/// on destruction.
class PageGuard;

/// \brief Buffer pool with LRU replacement.
///
/// Thread safety: all public methods are thread-safe. Content access still
/// requires the page latch (Page::RLatch/WLatch), which PageGuard exposes.
class BufferPool {
 public:
  BufferPool(size_t pool_size, DiskManager* disk);
  ~BufferPool();
  SEMCC_DISALLOW_COPY_AND_ASSIGN(BufferPool);

  /// Allocate a brand-new page, pinned.
  Result<PageGuard> NewPage();

  /// Fetch (possibly from disk), pinned.
  Result<PageGuard> FetchPage(PageId id);

  /// Write all dirty pages back.
  Status FlushAll();

  uint64_t hits() const { return hits_.load(); }
  uint64_t misses() const { return misses_.load(); }
  size_t pool_size() const { return frames_.size(); }

 private:
  friend class PageGuard;

  struct Frame {
    Page page;
    PageId disk_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
  };

  void Unpin(size_t frame_idx, bool dirty) SEMCC_EXCLUDES(mu_);

  /// Find a frame for `id`: hit, free frame, or LRU eviction. Returns the
  /// frame index with pin_count already incremented. Caller must load/init
  /// the page if `*loaded` is false.
  Result<size_t> Pin(PageId id, bool* hit) SEMCC_EXCLUDES(mu_);

  DiskManager* const disk_;
  Mutex mu_;
  /// Frame slots are allocated once in the constructor; mu_ guards the
  /// bookkeeping fields inside each Frame, not the vector itself.
  std::vector<std::unique_ptr<Frame>> frames_;
  std::unordered_map<PageId, size_t> page_table_ SEMCC_GUARDED_BY(mu_);
  /// front = most recent; only unpinned frames listed
  std::list<size_t> lru_ SEMCC_GUARDED_BY(mu_);
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_
      SEMCC_GUARDED_BY(mu_);
  std::vector<size_t> free_frames_ SEMCC_GUARDED_BY(mu_);
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_idx, Page* page)
      : pool_(pool), frame_idx_(frame_idx), page_(page) {}
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    Release();
    pool_ = other.pool_;
    frame_idx_ = other.frame_idx_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    return *this;
  }
  SEMCC_DISALLOW_COPY_AND_ASSIGN(PageGuard);
  ~PageGuard() { Release(); }

  Page* get() { return page_; }
  const Page* get() const { return page_; }
  Page* operator->() { return page_; }
  const Page* operator->() const { return page_; }
  bool valid() const { return page_ != nullptr; }

  /// Mark the page as modified; it will be written back before eviction.
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->Unpin(frame_idx_, dirty_);
      pool_ = nullptr;
      page_ = nullptr;
    }
  }

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_idx_ = 0;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace semcc

#endif  // SEMCC_STORAGE_BUFFER_POOL_H_
