// A second domain: an escrow-style banking ADT built on the same library —
// the classic motivating example for commutativity-based concurrency control
// ([O'N86] escrow, [SS84] shared abstract types, both cited by the paper).
//
// Account is an encapsulated type over two atoms (Balance, AuditLogCount):
//   Deposit(n)   — commutes with Deposit and Withdraw (addition commutes)
//   Withdraw(n)  — precondition balance >= n (state-dependent! the method
//                  FAILS the transaction if it cannot run, which is the
//                  standard way to keep state-independent commutativity
//                  sound for escrow-style updates)
//   Audit()      — reads the balance; conflicts with both updates
//   Transfer     — a method on the Bank object that invokes Withdraw and
//                  Deposit on two accounts: a two-level open nested
//                  transaction, exercising method-in-method invocation.
//
// Build & run:  ./build/examples/banking_adt
#include <cstdio>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/serializability.h"

using namespace semcc;

namespace {

struct Bank {
  Database* db;
  TypeId number, account, bank, accounts_set;
  Oid bank_obj;
  std::vector<Oid> accounts;

  Result<Oid> MakeAccount(int64_t no, int64_t initial) {
    SEMCC_ASSIGN_OR_RETURN(Oid bal, db->store()->CreateAtomic(number, Value(initial)));
    SEMCC_ASSIGN_OR_RETURN(Oid audits, db->store()->CreateAtomic(number, Value(int64_t{0})));
    SEMCC_ASSIGN_OR_RETURN(
        Oid acc, db->store()->CreateTuple(account, {{"Balance", bal},
                                                    {"Audits", audits}}));
    SEMCC_ASSIGN_OR_RETURN(Oid set, db->store()->Component(bank_obj, "Accounts"));
    SEMCC_RETURN_NOT_OK(db->store()->SetInsert(set, Value(no), acc));
    accounts.push_back(acc);
    return acc;
  }
};

Status Install(Bank* b) {
  Database* db = b->db;
  SEMCC_ASSIGN_OR_RETURN(b->number, db->schema()->DefineAtomicType("Number"));
  SEMCC_ASSIGN_OR_RETURN(
      b->account, db->schema()->DefineTupleType(
                      "Account", {{"Balance", b->number}, {"Audits", b->number}},
                      /*encapsulated=*/true));
  SEMCC_ASSIGN_OR_RETURN(b->accounts_set, db->schema()->DefineSetType(
                                              "Accounts", b->account, "No"));
  SEMCC_ASSIGN_OR_RETURN(
      b->bank, db->schema()->DefineTupleType(
                   "Bank", {{"Accounts", b->accounts_set}}, true));
  SEMCC_ASSIGN_OR_RETURN(Oid accounts, db->store()->CreateSet(b->accounts_set));
  SEMCC_ASSIGN_OR_RETURN(b->bank_obj,
                         db->store()->CreateTuple(b->bank, {{"Accounts", accounts}}));

  auto add = [](TxnCtx& ctx, Oid self, int64_t delta) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value bal, ctx.GetField(self, "Balance"));
    if (delta < 0 && bal.AsInt() + delta < 0) {
      return Status::PreconditionFailed("insufficient funds");
    }
    SEMCC_RETURN_NOT_OK(ctx.PutField(self, "Balance", Value(bal.AsInt() + delta)));
    return Value(bal.AsInt() + delta);
  };
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {b->account, "Deposit", false,
       [add](TxnCtx& ctx, Oid self, const Args& a) {
         return add(ctx, self, a[0].AsInt());
       },
       [](TxnCtx& ctx, Oid self, const Args& a, const Value&) -> Status {
         auto r = ctx.Invoke(self, "Withdraw", {a[0]});
         return r.ok() ? Status::OK() : r.status();
       }}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {b->account, "Withdraw", false,
       [add](TxnCtx& ctx, Oid self, const Args& a) {
         return add(ctx, self, -a[0].AsInt());
       },
       [](TxnCtx& ctx, Oid self, const Args& a, const Value&) -> Status {
         auto r = ctx.Invoke(self, "Deposit", {a[0]});
         return r.ok() ? Status::OK() : r.status();
       }}));
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {b->account, "Audit", true,
       [](TxnCtx& ctx, Oid self, const Args&) {
         return ctx.GetField(self, "Balance");
       },
       nullptr}));
  // Bank.Transfer(from_no, to_no, amount): method invoking methods.
  SEMCC_RETURN_NOT_OK(db->RegisterMethod(
      {b->bank, "Transfer", false,
       [](TxnCtx& ctx, Oid self, const Args& a) -> Result<Value> {
         SEMCC_ASSIGN_OR_RETURN(Oid set, ctx.Component(self, "Accounts"));
         SEMCC_ASSIGN_OR_RETURN(Oid from, ctx.SetSelect(set, a[0]));
         SEMCC_ASSIGN_OR_RETURN(Oid to, ctx.SetSelect(set, a[1]));
         SEMCC_ASSIGN_OR_RETURN(Value w, ctx.Invoke(from, "Withdraw", {a[2]}));
         (void)w;
         return ctx.Invoke(to, "Deposit", {a[2]});
       },
       [](TxnCtx& ctx, Oid self, const Args& a, const Value&) -> Status {
         // Inverse transfer.
         auto r = ctx.Invoke(self, "Transfer", {a[1], a[0], a[2]});
         return r.ok() ? Status::OK() : r.status();
       }}));

  // Commutativity: escrow-style updates commute; Audit conflicts with them.
  CompatibilityRegistry* c = db->compat();
  for (const char* m : {"Deposit", "Withdraw", "Audit"}) c->DeclareMethod(b->account, m);
  c->Define(b->account, "Deposit", "Deposit", true);
  c->Define(b->account, "Deposit", "Withdraw", true);
  c->Define(b->account, "Withdraw", "Withdraw", true);
  c->Define(b->account, "Audit", "Deposit", false);
  c->Define(b->account, "Audit", "Withdraw", false);
  c->Define(b->account, "Audit", "Audit", true);
  // Transfers commute with each other and with account updates (the
  // observable state they guard is covered by the account-level specs).
  c->DeclareMethod(b->bank, "Transfer");
  c->Define(b->bank, "Transfer", "Transfer", true);
  return Status::OK();
}

}  // namespace

int main() {
  Database db;
  Bank bank{&db, 0, 0, 0, 0, kInvalidOid, {}};
  if (!Install(&bank).ok()) return 1;
  constexpr int kAccounts = 4;
  constexpr int64_t kInitial = 10000;
  for (int i = 0; i < kAccounts; ++i) {
    if (!bank.MakeAccount(i, kInitial).ok()) return 1;
  }

  // Concurrent transfers between random accounts: under the semantic
  // protocol they all commute and never block at transaction level.
  constexpr int kThreads = 8;
  constexpr int kTransfersPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &bank, t]() {
      for (int i = 0; i < kTransfersPerThread; ++i) {
        const int64_t from = (t + i) % kAccounts;
        const int64_t to = (t + i + 1) % kAccounts;
        auto r = db.RunTransaction("transfer", [&](TxnCtx& ctx) {
          return ctx.Invoke(bank.bank_obj, "Transfer",
                            {Value(from), Value(to), Value(int64_t{7})});
        });
        if (!r.ok() && !r.status().IsPreconditionFailed()) {
          std::fprintf(stderr, "transfer failed: %s\n",
                       r.status().ToString().c_str());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Money is conserved.
  int64_t total = 0;
  for (Oid acc : bank.accounts) {
    auto r = db.RunTransaction("audit", [&](TxnCtx& ctx) {
      return ctx.Invoke(acc, "Audit", {});
    });
    total += r.ValueOrDie().AsInt();
    std::printf("account balance: %lld\n",
                static_cast<long long>(r.ValueOrDie().AsInt()));
  }
  std::printf("total: %lld (expected %lld)\n", static_cast<long long>(total),
              static_cast<long long>(kAccounts * kInitial));
  std::printf("lock stats: %s\n", db.locks()->stats().ToString().c_str());
  std::printf("txn stats : %s\n", db.txns()->stats().ToString().c_str());

  SemanticSerializabilityChecker checker(db.compat());
  auto check = checker.Check(db.history()->Snapshot());
  std::printf("history   : %s\n",
              check.serializable ? "semantically serializable" : "VIOLATION");
  return (total == kAccounts * kInitial && check.serializable) ? 0 : 1;
}
