// Quickstart: define an encapsulated ADT, give its methods a commutativity
// spec, and watch two update transactions run concurrently without blocking.
//
// The ADT is a Counter with Increment(n) / Decrement(n) / Read():
// increments commute with each other (addition is commutative and the
// methods return nothing), so the semantic lock manager lets concurrent
// increments through where read/write locking would serialize them.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/serializability.h"

using namespace semcc;

int main() {
  // 1. A database running the paper's protocol (semantic open nested
  //    transactions) — the default.
  Database db;

  // 2. Schema: Counter = <ValueOf: Number>, an encapsulated tuple type.
  TypeId number = db.schema()->DefineAtomicType("Number").ValueOrDie();
  TypeId counter =
      db.schema()
          ->DefineTupleType("Counter", {{"ValueOf", number}}, /*encapsulated=*/true)
          .ValueOrDie();

  // 3. Methods. Update methods must register a semantic inverse — that is
  //    how open nested transactions roll back committed subtransactions.
  auto add = [](TxnCtx& ctx, Oid self, int64_t delta) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(Value v, ctx.GetField(self, "ValueOf"));
    SEMCC_RETURN_NOT_OK(ctx.PutField(self, "ValueOf", Value(v.AsInt() + delta)));
    return Value();
  };
  Status st = db.RegisterMethod(
      {counter, "Increment", /*read_only=*/false,
       [add](TxnCtx& ctx, Oid self, const Args& a) {
         return add(ctx, self, a[0].AsInt());
       },
       [](TxnCtx& ctx, Oid self, const Args& a, const Value&) -> Status {
         auto r = ctx.Invoke(self, "Decrement", {a[0]});
         return r.ok() ? Status::OK() : r.status();
       }});
  if (!st.ok()) return 1;
  st = db.RegisterMethod(
      {counter, "Decrement", false,
       [add](TxnCtx& ctx, Oid self, const Args& a) {
         return add(ctx, self, -a[0].AsInt());
       },
       [](TxnCtx& ctx, Oid self, const Args& a, const Value&) -> Status {
         auto r = ctx.Invoke(self, "Increment", {a[0]});
         return r.ok() ? Status::OK() : r.status();
       }});
  if (!st.ok()) return 1;
  st = db.RegisterMethod({counter, "Read", true,
                          [](TxnCtx& ctx, Oid self, const Args&) {
                            return ctx.GetField(self, "ValueOf");
                          },
                          nullptr});
  if (!st.ok()) return 1;

  // 4. Commutativity: increments/decrements commute with each other;
  //    Read conflicts with both (it observes the value).
  db.compat()->Define(counter, "Increment", "Increment", true);
  db.compat()->Define(counter, "Increment", "Decrement", true);
  db.compat()->Define(counter, "Decrement", "Decrement", true);
  db.compat()->Define(counter, "Read", "Increment", false);
  db.compat()->Define(counter, "Read", "Decrement", false);
  db.compat()->Define(counter, "Read", "Read", true);

  // 5. One counter object.
  Oid value_atom = db.store()->CreateAtomic(number, Value(int64_t{0})).ValueOrDie();
  Oid c = db.store()->CreateTuple(counter, {{"ValueOf", value_atom}}).ValueOrDie();

  // 6. Hammer it from 8 threads; every transaction does two increments.
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, c]() {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto r = db.RunTransaction("bump", [&](TxnCtx& ctx) -> Result<Value> {
          SEMCC_ASSIGN_OR_RETURN(Value a, ctx.Invoke(c, "Increment", {Value(1)}));
          (void)a;
          return ctx.Invoke(c, "Increment", {Value(2)});
        });
        if (!r.ok()) {
          std::fprintf(stderr, "txn failed: %s\n", r.status().ToString().c_str());
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  auto final_value = db.RunTransaction("read", [&](TxnCtx& ctx) {
    return ctx.Invoke(c, "Read", {});
  });
  const int64_t expect = kThreads * kTxnsPerThread * 3;
  std::printf("final counter value : %lld (expected %lld)\n",
              static_cast<long long>(final_value.ValueOrDie().AsInt()),
              static_cast<long long>(expect));
  std::printf("lock statistics     : %s\n", db.locks()->stats().ToString().c_str());
  std::printf("txn statistics      : %s\n", db.txns()->stats().ToString().c_str());

  // 7. Validate the recorded history: semantically serializable.
  SemanticSerializabilityChecker checker(db.compat());
  auto check = checker.Check(db.history()->Snapshot());
  std::printf("history check       : %s\n",
              check.serializable ? "semantically serializable" : "VIOLATION");
  return (final_value.ok() && final_value.ValueOrDie().AsInt() == expect &&
          check.serializable)
             ? 0
             : 1;
}
