// Object-assembly queries (paper §1.1's second bypass motivation): a
// generic, structure-revealing reader coexisting with method-invoking
// transactions under the semantic protocol.
//
// Build & run:  ./build/examples/object_assembly
#include <cstdio>
#include <thread>

#include "app/orderentry/workload.h"
#include "query/object_assembly.h"

using namespace semcc;
using namespace semcc::orderentry;

int main() {
  Database db;
  OrderEntryTypes types = Install(&db).ValueOrDie();
  LoadSpec spec;
  spec.num_items = 3;
  spec.orders_per_item = 3;
  spec.price_cents = 250;
  LoadedData data = Load(&db, types, spec).ValueOrDie();

  // Run some business transactions so there is state worth assembling.
  (void)db.RunTransaction("t1", T1_ShipTwoOrders(data.item_oids[0], 1,
                                                 data.item_oids[1], 2));
  (void)db.RunTransaction("t2", T2_PayTwoOrders(data.item_oids[0], 1,
                                                data.item_oids[2], 3));

  // 1. Path queries — generic navigation, no methods invoked.
  auto run_path = [&](const char* path) {
    query::PathExpr expr = query::PathExpr::Parse(path).ValueOrDie();
    auto r = db.RunTransaction("path-query", [&](TxnCtx& ctx) -> Result<Value> {
      SEMCC_ASSIGN_OR_RETURN(auto values,
                             expr.ReadValues(ctx, data.item_oids[0]));
      std::printf("  item1 . %-24s ->", path);
      for (const Value& v : values) std::printf(" %s", v.ToString().c_str());
      std::printf("\n");
      return Value();
    });
    if (!r.ok()) std::printf("  %s FAILED: %s\n", path, r.status().ToString().c_str());
  };
  std::printf("path queries (bypassing reads through the object structure):\n");
  run_path("QuantityOnHand");
  run_path("Orders[1].Status");
  run_path("Orders[*].Quantity");
  run_path("NextOrderNo");

  // 2. Full object assembly.
  std::printf("\nassembled complex object (paper: \"object-assembly queries "
              "require the structure\nof an encapsulated complex object to be "
              "revealed\"):\n\n");
  std::unique_ptr<query::AssembledObject> assembled;
  auto r = db.RunTransaction("assemble", [&](TxnCtx& ctx) -> Result<Value> {
    SEMCC_ASSIGN_OR_RETURN(assembled, query::Assemble(ctx, data.item_oids[0]));
    return Value();
  });
  if (!r.ok()) return 1;
  std::printf("%s", assembled->ToString(1).c_str());
  std::printf("\n(%zu objects assembled)\n", assembled->NodeCount());
  return 0;
}
