// The paper's running example end to end: build the order-entry schema of
// Figure 1, run the five transaction types of §2.3 concurrently under the
// semantic protocol, print one method-invocation tree, and validate the
// recorded history.
//
// Build & run:  ./build/examples/order_entry
#include <cstdio>
#include <thread>
#include <vector>

#include "app/orderentry/workload.h"
#include "core/serializability.h"

using namespace semcc;
using namespace semcc::orderentry;

int main() {
  Database db;  // semantic open nested transactions (the paper's protocol)
  OrderEntryTypes types = Install(&db).ValueOrDie();

  // Print the schema (paper Figure 1).
  std::printf("Object schema (paper Figure 1):\n");
  for (const TypeDescriptor& t : db.schema()->AllTypes()) {
    std::printf("  %-8s : %s%s", t.name.c_str(), ObjectKindName(t.kind),
                t.encapsulated ? " (encapsulated)" : "");
    if (t.kind == ObjectKind::kTuple && !t.components.empty()) {
      std::printf(" <");
      for (size_t i = 0; i < t.components.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", t.components[i].name.c_str());
      }
      std::printf(">");
    }
    if (t.kind == ObjectKind::kSet) {
      std::printf(" of %s keyed by %s",
                  db.schema()->TypeName(t.member_type).c_str(),
                  t.key_component.c_str());
    }
    std::printf("\n");
  }

  // Load a small catalog and run a concurrent mix of T1-T5.
  WorkloadOptions wopts;
  wopts.load.num_items = 6;
  wopts.load.orders_per_item = 5;
  wopts.zipf_theta = 0.7;
  OrderEntryWorkload workload(&db, types, wopts);
  if (!workload.Setup().ok()) return 1;
  auto result = workload.Run(/*threads=*/6, /*txns_per_thread=*/100);
  std::printf("\nran %llu transactions in %.2fs (%.0f tps), %llu failed\n",
              static_cast<unsigned long long>(result.committed), result.seconds,
              result.throughput_tps,
              static_cast<unsigned long long>(result.failed));
  std::printf("lock stats: %s\n", db.locks()->stats().ToString().c_str());

  // Show one T1 invocation tree — the open nested transaction of Figure 4.
  db.history()->Clear();
  Oid i1 = workload.data().item_oids[0];
  Oid i2 = workload.data().item_oids[1];
  if (!db.RunTransaction("T1", T1_ShipTwoOrders(i1, 1, i2, 1)).ok()) return 1;
  std::printf("\na T1 method-invocation tree (cf. paper Figure 4):\n%s",
              FormatTxnTree(db.history()->Snapshot()[0]).c_str());

  // TotalPayment per item (T5), then validate the recorded history.
  int64_t grand_total = workload.TotalPaymentAllItems().ValueOrDie();
  std::printf("\ngrand total payment across items: %lld cents\n",
              static_cast<long long>(grand_total));

  SemanticSerializabilityChecker checker(db.compat());
  auto check = checker.Check(db.history()->Snapshot());
  std::printf("history check: %s\n",
              check.serializable ? "semantically serializable" : "VIOLATION");
  return check.serializable ? 0 : 1;
}
