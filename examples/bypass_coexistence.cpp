// The coexistence story of paper §1.1/§4: "truly object-oriented"
// transactions (method invocations on encapsulated Items) running against
// "conventional" transactions that bypass encapsulation and poke the
// implementation objects directly with generic Get/Select operations — the
// situation the paper's retained locks + commutative-ancestor test exist for.
//
// The example walks through the three bypass scenarios of Figures 5-7 and
// narrates what the lock manager did in each.
//
// Build & run:  ./build/examples/bypass_coexistence
#include <cstdio>

#include "app/orderentry/scenario.h"
#include "core/serializability.h"

using namespace semcc;
using namespace semcc::orderentry;

int main() {
  std::printf("1) Figure 5 — why subtransaction locks must be RETAINED\n");
  std::printf("   T3 reads order status directly while T1 is mid-flight.\n");
  {
    ProtocolOptions naive;
    naive.retain_locks = false;
    auto s = MakePaperScenario(naive).ValueOrDie();
    ScenarioOutcome out = RunFig5(s.get());
    SemanticSerializabilityChecker checker(s->db->compat());
    auto check = checker.Check(s->db->history()->Snapshot());
    std::printf("   naive §3 protocol : T3 %s; history %s\n",
                out.right_overlapped_left ? "slipped through" : "blocked",
                check.serializable ? "serializable (lucky)" : "NOT serializable");
  }
  {
    auto s = MakePaperScenario(ProtocolOptions{}).ValueOrDie();
    ScenarioOutcome out = RunFig5(s.get());
    SemanticSerializabilityChecker checker(s->db->compat());
    auto check = checker.Check(s->db->history()->Snapshot());
    std::printf("   paper protocol    : T3 %s; history %s\n\n",
                out.right_overlapped_left ? "slipped through" : "blocked until T1 commit",
                check.serializable ? "serializable" : "NOT serializable");
  }

  std::printf("2) Figure 6 — Case 1: retained locks alone would over-block\n");
  std::printf("   T4 checks PAYMENT of an order T1 only SHIPPED.\n");
  {
    auto s = MakePaperScenario(ProtocolOptions{}).ValueOrDie();
    ScenarioOutcome out = RunFig6(s.get());
    std::printf("   paper protocol    : T4 %s (case1 grants: %llu)\n\n",
                out.right_overlapped_left ? "ran concurrently with T1"
                                          : "was blocked",
                static_cast<unsigned long long>(
                    s->db->locks()->stats().case1_grants));
  }

  std::printf("3) Figure 7 — Case 2: waiting for a subtransaction, not the txn\n");
  std::printf("   T5 scans the item while T1 is INSIDE ShipOrder.\n");
  {
    auto s = MakePaperScenario(ProtocolOptions{}).ValueOrDie();
    ScenarioOutcome out = RunFig7(s.get());
    std::printf("   paper protocol    : %s;\n                       T5 finished %s T1's commit\n",
                out.note.substr(0, out.note.find(';')).c_str(),
                out.right_overlapped_left ? "BEFORE" : "after");
  }
  std::printf("\nAll three behaviors come from one rule: keep subtransaction\n"
              "locks as retained locks, and on a formal conflict walk both\n"
              "ancestor chains for a commuting pair on the same object\n"
              "(grant if committed, else wait for that subtransaction).\n");
  return 0;
}
