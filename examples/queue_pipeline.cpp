// Producer/consumer pipeline over the library's Queue ADT — the paper's
// §1.1 motivating example ("enqueueing the same item by two concurrent
// transactions is not a conflict") running as a real workload.
//
// The Queue is implemented in terms of a Counter ADT (Enqueue invokes
// Counter.Next for its position), so every Enqueue is a two-level open
// nested transaction: the Counter-level Next/Next conflict between
// concurrent producers is relieved by the Queue-level commutativity of
// Enqueue — watch the case1/case2 counters.
//
// Build & run:  ./build/examples/queue_pipeline
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "adt/standard_adts.h"
#include "core/serializability.h"

using namespace semcc;

int main() {
  Database db;
  adt::QueueType type = adt::InstallQueue(&db).ValueOrDie();
  Oid queue = adt::NewQueue(&db, type).ValueOrDie();

  constexpr int kProducers = 6;
  constexpr int kConsumers = 3;
  constexpr int kItemsPerProducer = 200;

  std::atomic<int64_t> produced{0};
  std::atomic<int64_t> consumed{0};
  std::atomic<int64_t> checksum_in{0};
  std::atomic<int64_t> checksum_out{0};
  std::atomic<bool> done_producing{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p]() {
      for (int i = 0; i < kItemsPerProducer; ++i) {
        const int64_t item = p * 100000 + i;
        auto r = db.RunTransaction("produce", [&](TxnCtx& ctx) {
          return ctx.Invoke(queue, "Enqueue", {Value(item)});
        });
        if (r.ok()) {
          produced.fetch_add(1);
          checksum_in.fetch_add(item);
        }
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&]() {
      while (true) {
        auto r = db.RunTransaction("consume", [&](TxnCtx& ctx) {
          return ctx.Invoke(queue, "Dequeue", {});
        });
        if (r.ok()) {
          consumed.fetch_add(1);
          checksum_out.fetch_add(r.ValueOrDie().AsInt());
        } else if (r.status().IsPreconditionFailed()) {
          if (done_producing.load() &&
              consumed.load() >= produced.load()) {
            break;  // drained
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        } else {
          std::fprintf(stderr, "consume failed: %s\n",
                       r.status().ToString().c_str());
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  done_producing.store(true);
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  std::printf("produced=%lld consumed=%lld checksum %s\n",
              static_cast<long long>(produced.load()),
              static_cast<long long>(consumed.load()),
              checksum_in.load() == checksum_out.load() ? "OK" : "MISMATCH");
  std::printf("lock stats: %s\n", db.locks()->stats().ToString().c_str());
  SemanticSerializabilityChecker checker(db.compat());
  auto check = checker.Check(db.history()->Snapshot());
  std::printf("history   : %s\n",
              check.serializable ? "semantically serializable" : "VIOLATION");
  return (checksum_in.load() == checksum_out.load() && check.serializable) ? 0
                                                                           : 1;
}
